// Unit tests for the modification logger and the i-diff instance generator
// (Section 5): logging, net changes, and routing updates to schemas.

#include "gtest/gtest.h"
#include "src/core/compose.h"
#include "src/core/modification_log.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

class ModLogTest : public ::testing::Test {
 protected:
  ModLogTest() { testing::LoadRunningExample(&db_); }
  Database db_;
};

TEST_F(ModLogTest, LoggerAppliesAndLogs) {
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Insert("parts", {Value("P4"), Value(40.0)}));
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"},
                            {Value(11.0)}));
  EXPECT_TRUE(logger.Delete("parts", {Value("P2")}));
  EXPECT_FALSE(logger.Delete("parts", {Value("P9")}));  // absent
  EXPECT_FALSE(logger.Update("parts", {Value("P9")}, {"price"},
                             {Value(1.0)}));

  EXPECT_EQ(db_.GetTable("parts").size(), 3u);  // 3 - 1 + 1
  EXPECT_EQ(logger.log().at("parts").size(), 3u);

  const auto net = logger.NetChanges();
  EXPECT_EQ(net.at("parts").size(), 3u);
  logger.Clear();
  EXPECT_TRUE(logger.log().empty());
}

TEST_F(ModLogTest, DuplicateKeyInsertRejectedWithoutSideEffects) {
  ModificationLogger logger(&db_);
  // P1 already exists: the insert is refused, and neither the table nor the
  // log (nor an attached journal) sees anything.
  EXPECT_FALSE(logger.Insert("parts", {Value("P1"), Value(99.0)}));
  EXPECT_EQ(db_.GetTable("parts").size(), 3u);
  EXPECT_TRUE(logger.log().empty());
  const auto row = db_.GetTable("parts").LookupByKeyUncounted({Value("P1")});
  ASSERT_TRUE(row.has_value());
  EXPECT_DOUBLE_EQ((*row)[1].AsDouble(), 10.0);  // original price intact
  // The same key is insertable again once the holder is deleted.
  EXPECT_TRUE(logger.Delete("parts", {Value("P1")}));
  EXPECT_TRUE(logger.Insert("parts", {Value("P1"), Value(99.0)}));
}

TEST_F(ModLogTest, ApplyReplaysRecordedModifications) {
  // Apply() is the recovery path: it re-applies a Modification exactly as
  // the logger recorded it.
  ModificationLogger source(&db_);
  EXPECT_TRUE(source.Insert("parts", {Value("P4"), Value(40.0)}));
  EXPECT_TRUE(source.Update("parts", {Value("P1")}, {"price"},
                            {Value(11.0)}));
  EXPECT_TRUE(source.Delete("parts", {Value("P2")}));
  std::vector<Modification> recorded = source.log().at("parts");

  Database replica;
  testing::LoadRunningExample(&replica);
  ModificationLogger replay(&replica);
  for (const Modification& mod : recorded) {
    EXPECT_TRUE(replay.Apply("parts", mod));
  }
  EXPECT_TRUE(replica.GetTable("parts").SnapshotUncounted().BagEquals(
      db_.GetTable("parts").SnapshotUncounted()));
}

TEST_F(ModLogTest, LoggerRejectsKeyMutation) {
  ModificationLogger logger(&db_);
  EXPECT_DEATH((void)logger.Update("parts", {Value("P1")}, {"pid"},
                             {Value("P9")}),
               "immutable");
}

TEST_F(ModLogTest, NetChangesCompactPerKey) {
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(11.0)}));
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(12.0)}));
  EXPECT_TRUE(logger.Insert("parts", {Value("P4"), Value(1.0)}));
  EXPECT_TRUE(logger.Delete("parts", {Value("P4")}));
  const auto net = logger.NetChanges();
  ASSERT_EQ(net.at("parts").size(), 1u);
  EXPECT_DOUBLE_EQ(net.at("parts")[0].post[1].AsDouble(), 12.0);
}

TEST_F(ModLogTest, InstancesRoutedToMatchingSchemas) {
  const CompiledView view =
      CompileView("v", testing::RunningExampleSpjPlan(db_), db_);
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(11.0)}));
  EXPECT_TRUE(logger.Insert("devices", {Value("D4"), Value("phone")}));
  EXPECT_TRUE(logger.Delete("devices_parts", {Value("D1"), Value("P2")}));

  const auto instances =
      GenerateDiffInstances(view, logger.NetChanges(), db_);
  int nonempty = 0;
  for (const auto& [name, inst] : instances) {
    if (!inst.empty()) {
      ++nonempty;
      switch (inst.schema().type()) {
        case DiffType::kUpdate:
          EXPECT_EQ(inst.schema().target(), "parts");
          EXPECT_EQ(inst.data().rows()[0][0].AsString(), "P1");
          break;
        case DiffType::kInsert:
          EXPECT_EQ(inst.schema().target(), "devices");
          break;
        case DiffType::kDelete:
          EXPECT_EQ(inst.schema().target(), "devices_parts");
          break;
      }
    }
  }
  EXPECT_EQ(nonempty, 3);
}

TEST_F(ModLogTest, SpanningUpdateGoesToUnionSchemaOnly) {
  // A view where devices has both a conditional (category) and, say,
  // nothing else — use a custom wide table to test routing.
  db_.CreateTable("wide", Schema({{"id", DataType::kInt64},
                                  {"cond", DataType::kInt64},
                                  {"payload", DataType::kDouble}}),
                  {"id"});
  db_.GetTable("wide").BulkLoadUncounted(Relation(
      db_.GetTable("wide").schema(),
      {{Value(int64_t{1}), Value(int64_t{5}), Value(1.0)}}));
  const PlanPtr plan = PlanNode::Select(
      PlanNode::Scan("wide"), Gt(Col("cond"), Lit(Value(int64_t{0}))));
  const CompiledView view = CompileView("vw", plan, db_);

  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("wide", {Value(int64_t{1})}, {"cond", "payload"},
                {Value(int64_t{7}), Value(2.0)}));
  const auto instances =
      GenerateDiffInstances(view, logger.NetChanges(), db_);
  // Exactly ONE update instance non-empty: the {cond, payload} union schema.
  int hits = 0;
  for (const auto& [name, inst] : instances) {
    if (inst.schema().type() != DiffType::kUpdate || inst.empty()) continue;
    ++hits;
    EXPECT_EQ(inst.schema().post_columns(),
              (std::vector<std::string>{"cond", "payload"}));
  }
  EXPECT_EQ(hits, 1);
}

TEST_F(ModLogTest, TypeChangingUpdateIsRealChange) {
  // NULL -> value flips count towards non-null; must be seen as a change.
  db_.CreateTable("n", Schema({{"id", DataType::kInt64},
                               {"x", DataType::kDouble}}),
                  {"id"});
  db_.GetTable("n").BulkLoadUncounted(
      Relation(db_.GetTable("n").schema(),
               {{Value(int64_t{1}), Value::Null()}}));
  const CompiledView view = CompileView("vn", PlanNode::Scan("n"), db_);
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("n", {Value(int64_t{1})}, {"x"}, {Value(3.0)}));
  const auto instances =
      GenerateDiffInstances(view, logger.NetChanges(), db_);
  bool found = false;
  for (const auto& [name, inst] : instances) {
    if (inst.schema().type() == DiffType::kUpdate && !inst.empty()) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace idivm
