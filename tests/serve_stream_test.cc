// The serving layer: IngestQueue backpressure semantics (block / shed /
// coalesce) and the MaintenanceService end to end — apply + refresh
// against a live pump thread, the watchdog deadline tripping the
// degradation ladder, adaptive housekeeping (snapshot + WAL truncation),
// and the kill-and-resume chaos cycle: crash mid-stream, tear the WAL
// tail, recover, verify views ≡ recompute, restart and keep ingesting.

#include <sys/stat.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/view_manager.h"
#include "src/persist/recovery.h"
#include "src/persist/wal.h"
#include "src/persist/wal_set.h"
#include "src/serve/ingest_queue.h"
#include "src/serve/service.h"
#include "src/storage/database.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

using persist::ReadSegmentedWal;
using persist::Recover;
using persist::RecoverResult;
using persist::SegmentedReadResult;
using persist::TruncateFile;
using persist::WalSegmentInfo;
using serve::BackpressurePolicy;
using serve::IngestOp;
using serve::IngestQueue;
using serve::IngestQueueOptions;
using serve::MaintenanceService;
using serve::ServiceHealth;
using serve::ServiceOptions;
using serve::ServiceStats;
using ::idivm::testing::ExpectViewMatchesRecompute;
using ::idivm::testing::LoadRunningExample;
using ::idivm::testing::RunningExampleSpjPlan;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "idivm_serve_" + name;
  const int rc = std::system(("rm -rf '" + dir + "'").c_str());
  EXPECT_EQ(rc, 0);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

IngestOp UpdateOp(const std::string& key, double value,
                  const std::string& column = "x") {
  IngestOp op;
  op.kind = DiffType::kUpdate;
  op.table = "t";
  op.row = {Value(key)};
  op.set_columns = {column};
  op.values = {Value(value)};
  return op;
}

IngestOp DeleteOp(const std::string& key) {
  IngestOp op;
  op.kind = DiffType::kDelete;
  op.table = "t";
  op.row = {Value(key)};
  return op;
}

IngestOp InsertOp(const std::string& key) {
  IngestOp op;
  op.kind = DiffType::kInsert;
  op.table = "t";
  op.row = {Value(key), Value(1.0)};
  return op;
}

std::vector<IngestOp> Drain(IngestQueue* queue) {
  std::vector<IngestOp> out;
  queue->WaitAndDrain(&out, 0.0);
  return out;
}

TEST(ServeQueueTest, ShedDropsWhenFullAndCounts) {
  IngestQueue queue({.capacity = 2, .policy = BackpressurePolicy::kShed});
  EXPECT_TRUE(queue.Submit(UpdateOp("u1", 1.0)));
  EXPECT_TRUE(queue.Submit(UpdateOp("u2", 2.0)));
  EXPECT_FALSE(queue.Submit(UpdateOp("u3", 3.0)));  // full: shed
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.shed(), 1u);
  EXPECT_EQ(queue.accepted(), 2u);
  EXPECT_EQ(Drain(&queue).size(), 2u);
  EXPECT_TRUE(queue.Submit(UpdateOp("u3", 3.0)));  // space again
}

TEST(ServeQueueTest, CoalesceMergesSameKeyUpdatesLastWriteWins) {
  IngestQueue queue({.capacity = 16, .policy = BackpressurePolicy::kCoalesce});
  EXPECT_TRUE(queue.Submit(UpdateOp("u1", 1.0)));
  EXPECT_TRUE(queue.Submit(UpdateOp("u2", 2.0)));
  EXPECT_TRUE(queue.Submit(UpdateOp("u1", 3.0)));  // merges into the first
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.coalesced(), 1u);
  const std::vector<IngestOp> ops = Drain(&queue);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].row[0].ToString(), "u1");
  ASSERT_EQ(ops[0].values.size(), 1u);
  EXPECT_EQ(ops[0].values[0], Value(3.0));  // last write won
}

TEST(ServeQueueTest, CoalesceDeleteSupersedesPendingUpdates) {
  IngestQueue queue({.capacity = 16, .policy = BackpressurePolicy::kCoalesce});
  EXPECT_TRUE(queue.Submit(UpdateOp("u1", 1.0)));
  EXPECT_TRUE(queue.Submit(UpdateOp("u2", 2.0)));
  EXPECT_TRUE(queue.Submit(DeleteOp("u1")));  // drops u1's update, enqueues
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.coalesced(), 1u);
  const std::vector<IngestOp> ops = Drain(&queue);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].kind, DiffType::kUpdate);
  EXPECT_EQ(ops[0].row[0].ToString(), "u2");
  EXPECT_EQ(ops[1].kind, DiffType::kDelete);
  EXPECT_EQ(ops[1].row[0].ToString(), "u1");
}

TEST(ServeQueueTest, CoalesceNeverMergesInsertsOrDifferentColumns) {
  IngestQueue queue({.capacity = 16, .policy = BackpressurePolicy::kCoalesce});
  EXPECT_TRUE(queue.Submit(InsertOp("u1")));
  EXPECT_TRUE(queue.Submit(InsertOp("u1")));  // inserts never coalesce
  EXPECT_TRUE(queue.Submit(UpdateOp("u2", 1.0, "x")));
  EXPECT_TRUE(queue.Submit(UpdateOp("u2", 2.0, "y")));  // different columns
  EXPECT_EQ(queue.depth(), 4u);
  EXPECT_EQ(queue.coalesced(), 0u);
  // An update after a pending delete of the same key must not merge
  // backwards through the delete barrier.
  EXPECT_TRUE(queue.Submit(DeleteOp("u3")));
  EXPECT_TRUE(queue.Submit(UpdateOp("u3", 9.0)));
  EXPECT_EQ(queue.depth(), 6u);
  EXPECT_EQ(queue.coalesced(), 0u);
}

TEST(ServeQueueTest, BlockWaitsUntilTheConsumerDrains) {
  IngestQueue queue({.capacity = 1, .policy = BackpressurePolicy::kBlock});
  EXPECT_TRUE(queue.Submit(UpdateOp("u1", 1.0)));
  std::future<bool> blocked = std::async(std::launch::async, [&queue] {
    return queue.Submit(UpdateOp("u2", 2.0));
  });
  // The producer stays blocked while the queue is full.
  EXPECT_EQ(blocked.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);
  EXPECT_EQ(Drain(&queue).size(), 1u);
  EXPECT_TRUE(blocked.get());  // woke and enqueued
  const std::vector<IngestOp> ops = Drain(&queue);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].row[0].ToString(), "u2");
}

TEST(ServeQueueTest, CloseWakesBlockedProducersAndKeepsPendingDrainable) {
  IngestQueue queue({.capacity = 1, .policy = BackpressurePolicy::kBlock});
  EXPECT_TRUE(queue.Submit(UpdateOp("u1", 1.0)));
  std::future<bool> blocked = std::async(std::launch::async, [&queue] {
    return queue.Submit(UpdateOp("u2", 2.0));
  });
  EXPECT_EQ(blocked.wait_for(std::chrono::milliseconds(50)),
            std::future_status::timeout);
  queue.Close();
  EXPECT_FALSE(blocked.get());  // woke and failed
  EXPECT_FALSE(queue.Submit(UpdateOp("u3", 3.0)));
  EXPECT_EQ(Drain(&queue).size(), 1u);  // pending op survives the close
}

// ---- MaintenanceService ----

ServiceOptions FastServiceOptions() {
  ServiceOptions options;
  options.refresh_pending_threshold = 4;
  options.refresh_interval_seconds = 0.002;
  options.poll_seconds = 0.001;
  return options;
}

TEST(ServeStreamTest, ServiceAppliesRefreshesAndCountsRejects) {
  Database db;
  LoadRunningExample(&db);
  ViewManager vm(&db);
  vm.DefineView("v", RunningExampleSpjPlan(db));

  MaintenanceService service(&vm, &db, FastServiceOptions());
  std::string error;
  ASSERT_TRUE(service.Start(&error)) << error;
  EXPECT_TRUE(service.running());

  ASSERT_TRUE(service.SubmitInsert("parts", {Value("P9"), Value(90.0)}));
  ASSERT_TRUE(
      service.SubmitUpdate("parts", {Value("P1")}, {"price"}, {Value(11.5)}));
  ASSERT_TRUE(service.SubmitDelete("devices_parts", {Value("D3"), Value("P2")}));
  ASSERT_TRUE(
      service.SubmitInsert("devices_parts", {Value("D1"), Value("P9")}));
  // Duplicate key: applied to the engine, rejected there, counted.
  ASSERT_TRUE(service.SubmitInsert("parts", {Value("P1"), Value(1.0)}));

  ASSERT_TRUE(service.WaitForQuiesce(20.0));
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.ops_applied, 4u);
  EXPECT_EQ(stats.ops_rejected, 1u);
  EXPECT_GE(stats.refreshes, 1u);
  EXPECT_EQ(stats.incidents, 0u);
  EXPECT_EQ(service.health(), ServiceHealth::kHealthy);
  // Every applied op contributed a staleness sample.
  EXPECT_EQ(service.StalenessSamples().size(), 4u);
  for (double sample : service.StalenessSamples()) EXPECT_GE(sample, 0.0);

  service.Stop();
  EXPECT_FALSE(service.running());
  EXPECT_FALSE(service.SubmitInsert("parts", {Value("P10"), Value(1.0)}));
  ExpectViewMatchesRecompute(&db, RunningExampleSpjPlan(db), "v",
                             "service end-to-end");
}

TEST(ServeStreamTest, DeadlineTripsTheDegradationLadder) {
  Database db;
  LoadRunningExample(&db);
  ViewManager vm(&db);
  vm.DefineView("v", RunningExampleSpjPlan(db));

  ServiceOptions options = FastServiceOptions();
  // A watchdog that has already expired when armed: every epoch fails at
  // its first fault site and walks the ladder. The recompute rung is not
  // deadline-checked, so views still recover within the same refresh.
  options.deadline_seconds = 1e-9;
  MaintenanceService service(&vm, &db, options);
  std::string error;
  ASSERT_TRUE(service.Start(&error)) << error;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(service.SubmitUpdate("parts", {Value("P1")}, {"price"},
                                     {Value(10.0 + i)}));
  }
  ASSERT_TRUE(service.WaitForQuiesce(20.0));
  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.deadline_trips, 1u);
  EXPECT_GE(stats.incidents, 1u);
  EXPECT_EQ(service.health(), ServiceHealth::kHealthy);  // ladder recovered
  service.Stop();
  ExpectViewMatchesRecompute(&db, RunningExampleSpjPlan(db), "v",
                             "deadline-tripped refreshes");
}

TEST(ServeStreamTest, HousekeepingSnapshotsAndBoundsTheWal) {
  const std::string dir = FreshDir("housekeeping");
  Database db;
  LoadRunningExample(&db);
  ViewManager vm(&db);
  vm.DefineView("v", RunningExampleSpjPlan(db));

  ServiceOptions options = FastServiceOptions();
  options.data_dir = dir;
  options.wal.rotate_bytes = 512;
  options.snapshot_every_records = 16;
  options.snapshot_every_bytes = 0;
  MaintenanceService service(&vm, &db, options);
  std::string error;
  ASSERT_TRUE(service.Start(&error)) << error;

  for (int wave = 0; wave < 4; ++wave) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(service.SubmitUpdate("parts", {Value("P2")}, {"price"},
                                       {Value(20.0 + wave * 10 + i)}));
    }
    ASSERT_TRUE(service.WaitForQuiesce(20.0));
  }
  // Housekeeping runs on idle pump iterations after the record trigger;
  // give it a moment.
  for (int i = 0; i < 200 && service.stats().snapshots == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  service.Stop();

  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.snapshots, 1u);
  EXPECT_EQ(stats.snapshot_failures, 0u);
  EXPECT_GT(stats.wal_bytes, 0u);

  // The truncated, rotated WAL plus the snapshot recover to the same
  // views the live engine held.
  Database db2;
  ViewManager vm2(&db2);
  const RecoverResult recovered =
      Recover(&db2, &vm2, dir + "/snapshot.bin", dir + "/wal");
  ASSERT_TRUE(recovered.ok) << recovered.error;
  EXPECT_GT(recovered.snapshot_lsn, 0u);  // a housekeeping snapshot, not
                                          // the bootstrap one
  ExpectViewMatchesRecompute(&db2, RunningExampleSpjPlan(db2), "v",
                             "recovered after housekeeping");
  EXPECT_TRUE(db2.GetTable("v").SnapshotUncounted().BagEquals(
      db.GetTable("v").SnapshotUncounted()));
}

// The kill-and-resume chaos cycle of ISSUE.md: ingest, crash without
// warning mid-stream, tear the WAL tail (the bytes the OS never made
// durable), recover, check views ≡ recompute, then resume ingest on the
// same data directory and land in a consistent, durable state again.
TEST(ServeStreamTest, KillAndResumeChaosCycle) {
  const std::string dir = FreshDir("chaos");
  ServiceOptions options = FastServiceOptions();
  options.data_dir = dir;
  options.wal.rotate_bytes = 2048;
  // No housekeeping snapshots: recovery must replay the whole stream.
  options.snapshot_every_records = 0;
  options.snapshot_every_bytes = 0;

  Database db;
  LoadRunningExample(&db);
  ViewManager vm(&db);
  vm.DefineView("v", RunningExampleSpjPlan(db));
  auto service = std::make_unique<MaintenanceService>(&vm, &db, options);
  std::string error;
  ASSERT_TRUE(service->Start(&error)) << error;

  // Phase 1: a quiesced prefix, guaranteed applied and committed.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(service->SubmitInsert(
        "parts", {Value("P1" + std::to_string(100 + i)), Value(1.0 * i)}));
    ASSERT_TRUE(service->SubmitUpdate("parts", {Value("P1")}, {"price"},
                                      {Value(10.0 + i)}));
  }
  ASSERT_TRUE(service->WaitForQuiesce(20.0));

  // Phase 2: more ops, then crash mid-stream — some applied, some still
  // queued and abandoned.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(service->SubmitInsert(
        "parts", {Value("P2" + std::to_string(100 + i)), Value(2.0 * i)}));
  }
  service->Crash();
  service.reset();

  // Tear the active segment's tail: the crash lost the last few bytes.
  const std::string wal_dir = dir + "/wal";
  SegmentedReadResult damaged = ReadSegmentedWal(wal_dir);
  ASSERT_FALSE(damaged.segments.empty());
  const WalSegmentInfo& last = damaged.segments.back();
  if (last.bytes > 16) {
    ASSERT_TRUE(TruncateFile(last.path, last.bytes - 5));
  }

  // Recover and verify: whatever prefix survived, views ≡ recompute.
  Database db2;
  ViewManager vm2(&db2);
  RecoverResult recovered =
      Recover(&db2, &vm2, dir + "/snapshot.bin", dir + "/wal");
  ASSERT_TRUE(recovered.ok) << recovered.error;
  EXPECT_GE(recovered.batches_applied, 1u);  // the quiesced prefix survived
  ExpectViewMatchesRecompute(&db2, RunningExampleSpjPlan(db2), "v",
                             "after crash + torn WAL tail");
  // The quiesced phase-1 rows are durable.
  EXPECT_GE(db2.GetTable("parts").SnapshotUncounted().size(), 3u + 40u);

  // Resume on the same directory: Start truncates the WAL to the same
  // boundary recovery replayed to, so new appends extend the recovered
  // state.
  auto resumed = std::make_unique<MaintenanceService>(&vm2, &db2, options);
  ASSERT_TRUE(resumed->Start(&error)) << error;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(resumed->SubmitInsert(
        "parts", {Value("P3" + std::to_string(100 + i)), Value(3.0 * i)}));
    ASSERT_TRUE(resumed->SubmitUpdate("parts", {Value("P2")}, {"price"},
                                      {Value(40.0 + i)}));
  }
  ASSERT_TRUE(resumed->WaitForQuiesce(20.0));
  resumed->Stop();
  ExpectViewMatchesRecompute(&db2, RunningExampleSpjPlan(db2), "v",
                             "after resume");

  // And the whole thing is durable again: a second cold recovery replays
  // pre-crash and post-resume batches alike.
  Database db3;
  ViewManager vm3(&db3);
  recovered = Recover(&db3, &vm3, dir + "/snapshot.bin", dir + "/wal");
  ASSERT_TRUE(recovered.ok) << recovered.error;
  ExpectViewMatchesRecompute(&db3, RunningExampleSpjPlan(db3), "v",
                             "cold recovery after resume");
  EXPECT_TRUE(db3.GetTable("parts").SnapshotUncounted().BagEquals(
      db2.GetTable("parts").SnapshotUncounted()));
}

}  // namespace
}  // namespace idivm
