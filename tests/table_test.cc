// Unit tests for the storage layer: CRUD through indexes, secondary index
// consistency under updates, and exact access accounting (the substrate of
// the Section 6 cost model).

#include "gtest/gtest.h"
#include "src/storage/database.h"

namespace idivm {
namespace {

class TableTest : public ::testing::Test {
 protected:
  TableTest()
      : table_(db_.CreateTable("t",
                               Schema({{"id", DataType::kInt64},
                                       {"grp", DataType::kInt64},
                                       {"val", DataType::kDouble}}),
                               {"id"})) {}

  void Fill(int64_t n) {
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_TRUE(table_.Insert({Value(i), Value(i % 3), Value(i * 1.0)}));
    }
  }

  Database db_;
  Table& table_;
};

TEST_F(TableTest, InsertRejectsDuplicateKeys) {
  EXPECT_TRUE(table_.Insert({Value(int64_t{1}), Value(int64_t{0}),
                             Value(1.0)}));
  EXPECT_FALSE(table_.Insert({Value(int64_t{1}), Value(int64_t{9}),
                              Value(9.0)}));
  EXPECT_EQ(table_.size(), 1u);
}

TEST_F(TableTest, LookupByKey) {
  Fill(10);
  const auto row = table_.LookupByKey({Value(int64_t{7})});
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ((*row)[1].AsInt64(), 1);
  EXPECT_FALSE(table_.LookupByKey({Value(int64_t{99})}).has_value());
  // Uncounted variant charges nothing.
  db_.stats().Reset();
  table_.LookupByKeyUncounted({Value(int64_t{7})});
  EXPECT_EQ(db_.stats().TotalAccesses(), 0);
}

TEST_F(TableTest, SecondaryIndexLookup) {
  Fill(9);
  db_.stats().Reset();
  const std::vector<Row> rows =
      table_.LookupWhereEquals({1}, {Value(int64_t{2})});
  EXPECT_EQ(rows.size(), 3u);  // ids 2, 5, 8
  // Cost model: 1 index lookup + 1 read per returned row.
  EXPECT_EQ(db_.stats().index_lookups, 1);
  EXPECT_EQ(db_.stats().tuple_reads, 3);
}

TEST_F(TableTest, DeleteByKeyAndWhereEquals) {
  Fill(9);
  EXPECT_TRUE(table_.DeleteByKey({Value(int64_t{4})}));
  EXPECT_FALSE(table_.DeleteByKey({Value(int64_t{4})}));
  EXPECT_EQ(table_.size(), 8u);
  std::vector<Row> deleted;
  const size_t n = table_.DeleteWhereEquals({1}, {Value(int64_t{0})},
                                            &deleted);
  EXPECT_EQ(n, 3u);  // ids 0, 3, 6
  EXPECT_EQ(deleted.size(), 3u);
  EXPECT_EQ(table_.size(), 5u);
}

TEST_F(TableTest, SlotReuseAfterDelete) {
  Fill(5);
  table_.DeleteByKey({Value(int64_t{2})});
  EXPECT_TRUE(table_.Insert({Value(int64_t{100}), Value(int64_t{1}),
                             Value(5.0)}));
  EXPECT_EQ(table_.size(), 5u);
  EXPECT_TRUE(table_.LookupByKey({Value(int64_t{100})}).has_value());
  EXPECT_FALSE(table_.LookupByKey({Value(int64_t{2})}).has_value());
}

TEST_F(TableTest, UpdateMaintainsSecondaryIndexes) {
  Fill(9);
  table_.EnsureIndex({"grp"});
  // Move id 0 from group 0 to group 2.
  EXPECT_TRUE(table_.UpdateByKey({Value(int64_t{0})}, {1},
                                 {Value(int64_t{2})}));
  EXPECT_EQ(table_.LookupWhereEquals({1}, {Value(int64_t{2})}).size(), 4u);
  EXPECT_EQ(table_.LookupWhereEquals({1}, {Value(int64_t{0})}).size(), 2u);
}

TEST_F(TableTest, UpdateWhereEqualsCosts) {
  Fill(9);
  db_.stats().Reset();
  const size_t n = table_.UpdateWhereEquals({1}, {Value(int64_t{1})}, {2},
                                            {Value(99.0)});
  EXPECT_EQ(n, 3u);
  // 1 lookup + 1 write per touched row (paper's UPDATE model).
  EXPECT_EQ(db_.stats().index_lookups, 1);
  EXPECT_EQ(db_.stats().tuple_writes, 3);
  EXPECT_EQ(db_.stats().tuple_reads, 0);
}

TEST_F(TableTest, UpdateRowsWhereEqualsReturning) {
  Fill(3);
  std::vector<Row> pre;
  std::vector<Row> post;
  table_.UpdateRowsWhereEquals(
      {0}, {Value(int64_t{1})},
      [](Row& row) { row[2] = Value(42.0); }, &pre, &post);
  ASSERT_EQ(pre.size(), 1u);
  ASSERT_EQ(post.size(), 1u);
  EXPECT_DOUBLE_EQ(pre[0][2].AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(post[0][2].AsDouble(), 42.0);
}

TEST_F(TableTest, ContainsRowChecksFullRow) {
  Fill(3);
  EXPECT_TRUE(table_.ContainsRow({Value(int64_t{1}), Value(int64_t{1}),
                                  Value(1.0)}));
  EXPECT_FALSE(table_.ContainsRow({Value(int64_t{1}), Value(int64_t{1}),
                                   Value(9.0)}));
}

TEST_F(TableTest, ScanCountsReads) {
  Fill(6);
  db_.stats().Reset();
  const Relation all = table_.ScanAll();
  EXPECT_EQ(all.size(), 6u);
  EXPECT_EQ(db_.stats().tuple_reads, 6);
  db_.stats().Reset();
  EXPECT_EQ(table_.SnapshotUncounted().size(), 6u);
  EXPECT_EQ(db_.stats().TotalAccesses(), 0);
}

TEST_F(TableTest, BulkLoadReplacesContents) {
  Fill(4);
  Relation fresh(table_.schema());
  fresh.Append({Value(int64_t{77}), Value(int64_t{0}), Value(7.0)});
  table_.BulkLoadUncounted(fresh);
  EXPECT_EQ(table_.size(), 1u);
  EXPECT_TRUE(table_.LookupByKey({Value(int64_t{77})}).has_value());
}

TEST_F(TableTest, CompositeKey) {
  Table& t2 = db_.CreateTable(
      "t2",
      Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64},
              {"v", DataType::kDouble}}),
      {"a", "b"});
  EXPECT_TRUE(t2.Insert({Value(int64_t{1}), Value(int64_t{1}), Value(0.0)}));
  EXPECT_TRUE(t2.Insert({Value(int64_t{1}), Value(int64_t{2}), Value(0.0)}));
  EXPECT_FALSE(t2.Insert({Value(int64_t{1}), Value(int64_t{1}), Value(9.0)}));
}

}  // namespace
}  // namespace idivm
