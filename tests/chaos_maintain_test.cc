// Chaos tests for the fault-isolated maintenance epochs (src/robust): a
// fault injected at *any* site of a ∆-script must roll the epoch back to
// byte-identical pre-epoch state with no stats published, and the
// ViewManager's degradation ladder must absorb failures rung by rung,
// always leaving every serviceable view byte-equal to recompute.

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/compose.h"
#include "src/core/maintainer.h"
#include "src/core/modification_log.h"
#include "src/core/view_manager.h"
#include "src/obs/metrics.h"
#include "src/robust/fault_injection.h"
#include "src/robust/status.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

// Random-rate refresh rounds per test; CI raises this to 200.
int ChaosSeeds() {
  const char* env = std::getenv("IDIVM_CHAOS_SEEDS");
  if (env != nullptr) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 25;
}

// Snapshot of every table in the database, for byte-level comparison.
std::map<std::string, std::string> SnapshotAll(Database* db) {
  std::map<std::string, std::string> out;
  for (const std::string& name : db->TableNames()) {
    out[name] = db->GetTable(name).SnapshotUncounted().Sorted().ToString();
  }
  return out;
}

void ExpectTablesEqual(Database* db,
                       const std::map<std::string, std::string>& expected,
                       const std::string& context) {
  const std::map<std::string, std::string> actual = SnapshotAll(db);
  ASSERT_EQ(actual.size(), expected.size()) << context;
  for (const auto& [name, contents] : expected) {
    EXPECT_EQ(actual.at(name), contents) << context << ": table " << name;
  }
}

// The running-example change batch used by every maintainer-level test:
// touches all three base tables so both the SPJ chain and the γ step run.
std::map<std::string, std::vector<Modification>> MakeNetChanges(
    Database* db) {
  ModificationLogger logger(db);
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"},
                            {Value(11.0)}));
  EXPECT_TRUE(logger.Insert("parts", {Value("P5"), Value(50.0)}));
  EXPECT_TRUE(logger.Insert("devices_parts", {Value("D1"), Value("P5")}));
  EXPECT_TRUE(logger.Delete("devices_parts", {Value("D2"), Value("P1")}));
  EXPECT_TRUE(logger.Update("devices", {Value("D3")}, {"category"},
                            {Value("phone")}));
  const auto net = logger.NetChanges();
  // The logger already applied the changes to the base tables; the net
  // modifications are what a deferred Refresh would hand each view.
  return net;
}

class ChaosMaintainTest : public ::testing::TestWithParam<const char*> {};

// Every fault site of the ∆-script, one at a time: the epoch must fail,
// roll every table back byte-identically, publish no stats, and a clean
// re-run must land exactly on the recompute result.
TEST_P(ChaosMaintainTest, EveryFaultSiteRollsBackExactly) {
  const std::string shape = GetParam();
  // Count the fault surface with an injector that never fires.
  uint64_t total_sites = 0;
  {
    Database db;
    testing::LoadRunningExample(&db);
    const PlanPtr plan = shape == "agg"
                             ? testing::RunningExampleAggPlan(db)
                             : testing::RunningExampleSpjPlan(db);
    Maintainer m(&db, CompileView("v", plan, db));
    const auto net = MakeNetChanges(&db);
    FaultInjector probe;
    MaintainResult result;
    MaintainOptions options;
    options.fault = &probe;
    ASSERT_TRUE(m.TryMaintain(net, options, &result).ok());
    total_sites = probe.sites_visited();
  }
  ASSERT_GT(total_sites, 0u);

  for (uint64_t site = 0; site < total_sites; ++site) {
    Database db;
    testing::LoadRunningExample(&db);
    const PlanPtr plan = shape == "agg"
                             ? testing::RunningExampleAggPlan(db)
                             : testing::RunningExampleSpjPlan(db);
    Maintainer m(&db, CompileView("v", plan, db));
    const auto net = MakeNetChanges(&db);

    const std::map<std::string, std::string> before = SnapshotAll(&db);
    const std::string stats_before = db.stats().ToString();

    FaultPlan fault;
    fault.fire_at_site = site;
    FaultInjector injector(fault);
    MaintainOptions options;
    options.fault = &injector;
    MaintainResult result;
    const Status status = m.TryMaintain(net, options, &result);
    const std::string context = shape + " site " + std::to_string(site);
    ASSERT_FALSE(status.ok()) << context;
    EXPECT_EQ(status.code(), StatusCode::kInjectedFault) << context;
    EXPECT_EQ(injector.faults_fired(), 1) << context;

    // Rollback: every table byte-identical, stats exactly pre-epoch.
    ExpectTablesEqual(&db, before, context);
    EXPECT_EQ(db.stats().ToString(), stats_before) << context;

    // The failure is transient: a clean run converges on recompute.
    m.Maintain(net);
    testing::ExpectViewMatchesRecompute(&db, plan, "v", context);
  }
}

// Batched undo capture (one before-image region per APPLY instead of one
// per tuple): the flush boundary "apply-flush:<table>" is on the fault
// surface, and a fault fired there — after the whole batch reached the
// epoch undo — must still roll every table back byte-identically from the
// batched entries.
TEST_P(ChaosMaintainTest, ApplyFlushFaultRollsBackBatchedCapture) {
  const std::string shape = GetParam();
  uint64_t total_sites = 0;
  {
    Database db;
    testing::LoadRunningExample(&db);
    const PlanPtr plan = shape == "agg"
                             ? testing::RunningExampleAggPlan(db)
                             : testing::RunningExampleSpjPlan(db);
    Maintainer m(&db, CompileView("v", plan, db));
    const auto net = MakeNetChanges(&db);
    FaultInjector probe;
    MaintainResult result;
    MaintainOptions options;
    options.fault = &probe;
    const int64_t batches_before =
        obs::MetricsRegistry::Global().CounterValue(
            "idivm_undo_batches_total");
    ASSERT_TRUE(m.TryMaintain(net, options, &result).ok());
    // The clean epoch captured whole-APPLY undo batches (contract v5).
    EXPECT_GT(obs::MetricsRegistry::Global().CounterValue(
                  "idivm_undo_batches_total"),
              batches_before);
    total_sites = probe.sites_visited();
  }
  ASSERT_GT(total_sites, 0u);

  int flush_sites = 0;
  for (uint64_t site = 0; site < total_sites; ++site) {
    Database db;
    testing::LoadRunningExample(&db);
    const PlanPtr plan = shape == "agg"
                             ? testing::RunningExampleAggPlan(db)
                             : testing::RunningExampleSpjPlan(db);
    Maintainer m(&db, CompileView("v", plan, db));
    const auto net = MakeNetChanges(&db);
    const std::map<std::string, std::string> before = SnapshotAll(&db);

    FaultPlan fault;
    fault.fire_at_site = site;
    FaultInjector injector(fault);
    MaintainOptions options;
    options.fault = &injector;
    MaintainResult result;
    const Status status = m.TryMaintain(net, options, &result);
    ASSERT_FALSE(status.ok()) << shape << " site " << site;
    if (status.ToString().find("apply-flush:") == std::string::npos) {
      continue;
    }
    ++flush_sites;
    const std::string context =
        shape + " flush site " + std::to_string(site);
    ExpectTablesEqual(&db, before, context);
    m.Maintain(net);
    testing::ExpectViewMatchesRecompute(&db, plan, "v", context);
  }
  // Every shape has at least one APPLY, hence at least one flush site.
  EXPECT_GT(flush_sites, 0) << shape;
}

TEST_P(ChaosMaintainTest, EpochOpBudgetRollsBack) {
  Database db;
  testing::LoadRunningExample(&db);
  const std::string shape = GetParam();
  const PlanPtr plan = shape == "agg" ? testing::RunningExampleAggPlan(db)
                                      : testing::RunningExampleSpjPlan(db);
  Maintainer m(&db, CompileView("v", plan, db));
  const auto net = MakeNetChanges(&db);
  const std::map<std::string, std::string> before = SnapshotAll(&db);

  MaintainOptions options;
  options.max_epoch_ops = 1;  // the batch mutates far more than one row
  MaintainResult result;
  const Status status = m.TryMaintain(net, options, &result);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  ExpectTablesEqual(&db, before, "op budget");

  // An adequate budget succeeds.
  options.max_epoch_ops = 1 << 20;
  ASSERT_TRUE(m.TryMaintain(net, options, &result).ok());
  testing::ExpectViewMatchesRecompute(&db, plan, "v", "after budget raise");
}

INSTANTIATE_TEST_SUITE_P(Shapes, ChaosMaintainTest,
                         ::testing::Values("spj", "agg"));

// ---- ViewManager degradation ladder -----------------------------------

// Records quarantine journal calls without a real WAL.
class RecordingJournal : public ModificationJournal {
 public:
  uint64_t JournalModification(const std::string&,
                               const Modification&) override {
    return ++lsn_;
  }
  uint64_t JournalCommit() override { return ++lsn_; }
  uint64_t JournalQuarantine(const std::string& view,
                             const std::string& reason) override {
    quarantines.emplace_back(view, reason);
    return ++lsn_;
  }
  std::vector<std::pair<std::string, std::string>> quarantines;

 private:
  uint64_t lsn_ = 0;
};

class LadderTest : public ::testing::Test {
 protected:
  LadderTest() {
    testing::LoadRunningExample(&db_);
    vm_ = std::make_unique<ViewManager>(&db_);
    vm_->DefineView("v_spj", testing::RunningExampleSpjPlan(db_));
    vm_->DefineView("v_agg", testing::RunningExampleAggPlan(db_));
  }

  void ApplyChanges() {
    EXPECT_TRUE(vm_->Update("parts", {Value("P1")}, {"price"},
                            {Value(11.0)}));
    EXPECT_TRUE(vm_->Insert("parts", {Value("P6"), Value(60.0)}));
    EXPECT_TRUE(vm_->Insert("devices_parts", {Value("D2"), Value("P6")}));
    EXPECT_TRUE(vm_->Delete("devices_parts", {Value("D1"), Value("P2")}));
  }

  void ExpectViewsMatchRecompute(const std::string& context) {
    testing::ExpectViewMatchesRecompute(
        &db_, vm_->GetView("v_spj").view().plan, "v_spj", context);
    testing::ExpectViewMatchesRecompute(
        &db_, vm_->GetView("v_agg").view().plan, "v_agg", context);
  }

  Database db_;
  std::unique_ptr<ViewManager> vm_;
};

// With fire_at_site = 0 and sequential execution, max_fires selects the
// deepest rung reached: 1 → the single-threaded retry succeeds, 2 → the
// retry fails too and recompute lands it, 3 → recompute fails as well and
// the view is quarantined.
TEST_F(LadderTest, RungOneRetryRecovers) {
  ApplyChanges();
  FaultPlan plan;
  plan.fire_at_site = 0;
  plan.max_fires = 1;
  FaultInjector injector(plan);
  RefreshOptions options;
  options.fault = &injector;
  RefreshReport report;
  ASSERT_TRUE(vm_->TryRefresh(options, &report).ok());

  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].view, "v_spj");  // first in definition order
  EXPECT_EQ(report.incidents[0].rung, 1);
  EXPECT_TRUE(report.incidents[0].recovered);
  EXPECT_EQ(report.results.size(), 2u);
  EXPECT_EQ(db_.stats().epoch_rollbacks, 1);
  EXPECT_EQ(db_.stats().degraded_retries, 1);
  EXPECT_EQ(db_.stats().recompute_fallbacks, 0);
  EXPECT_EQ(db_.stats().quarantines, 0);
  ExpectViewsMatchRecompute("rung 1");
}

TEST_F(LadderTest, RungTwoRecomputeRecovers) {
  ApplyChanges();
  FaultPlan plan;
  plan.fire_at_site = 0;
  plan.max_fires = 2;
  FaultInjector injector(plan);
  RefreshOptions options;
  options.fault = &injector;
  RefreshReport report;
  ASSERT_TRUE(vm_->TryRefresh(options, &report).ok());

  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].rung, 2);
  EXPECT_TRUE(report.incidents[0].recovered);
  EXPECT_EQ(db_.stats().epoch_rollbacks, 2);  // first attempt + failed retry
  EXPECT_EQ(db_.stats().degraded_retries, 1);
  EXPECT_EQ(db_.stats().recompute_fallbacks, 1);
  EXPECT_EQ(db_.stats().quarantines, 0);
  ExpectViewsMatchRecompute("rung 2");
}

TEST_F(LadderTest, RungThreeQuarantinesAndJournals) {
  RecordingJournal journal;
  vm_->set_journal(&journal);
  ApplyChanges();
  FaultPlan plan;
  plan.fire_at_site = 0;
  plan.max_fires = 1000;  // every attempt, retry and recompute fails
  FaultInjector injector(plan);
  RefreshOptions options;
  options.fault = &injector;
  RefreshReport report;
  ASSERT_TRUE(vm_->TryRefresh(options, &report).ok());

  ASSERT_EQ(report.incidents.size(), 2u);
  for (const ViewIncident& incident : report.incidents) {
    EXPECT_EQ(incident.rung, 3) << incident.view;
    EXPECT_FALSE(incident.recovered) << incident.view;
  }
  EXPECT_TRUE(vm_->IsQuarantined("v_spj"));
  EXPECT_TRUE(vm_->IsQuarantined("v_agg"));
  EXPECT_EQ(vm_->QuarantinedViews(),
            (std::vector<std::string>{"v_agg", "v_spj"}));
  EXPECT_TRUE(report.results.empty());
  EXPECT_EQ(db_.stats().quarantines, 2);
  EXPECT_EQ(db_.stats().degraded_retries, 2);
  EXPECT_EQ(db_.stats().recompute_fallbacks, 2);
  ASSERT_EQ(journal.quarantines.size(), 2u);

  // Quarantined views are skipped by the next refresh and come back via
  // RepairView.
  EXPECT_TRUE(vm_->Update("parts", {Value("P2")}, {"price"},
                          {Value(21.0)}));
  RefreshReport next;
  ASSERT_TRUE(vm_->TryRefresh({}, &next).ok());
  EXPECT_TRUE(next.results.empty());
  vm_->RepairView("v_spj");
  vm_->RepairView("v_agg");
  EXPECT_FALSE(vm_->IsQuarantined("v_spj"));
  EXPECT_FALSE(vm_->IsQuarantined("v_agg"));
  ExpectViewsMatchRecompute("after repair");
}

TEST_F(LadderTest, FailFastSurfacesTheError) {
  ApplyChanges();
  const std::map<std::string, std::string> view_before = {
      {"v_spj",
       db_.GetTable("v_spj").SnapshotUncounted().Sorted().ToString()},
      {"v_agg",
       db_.GetTable("v_agg").SnapshotUncounted().Sorted().ToString()}};
  FaultPlan plan;
  plan.fire_at_site = 0;
  plan.max_fires = 1000;  // keep failing: no rung may absorb it
  FaultInjector injector(plan);
  RefreshOptions options;
  options.degrade = DegradePolicy::kFailFast;
  options.fault = &injector;
  RefreshReport report;
  const Status status = vm_->TryRefresh(options, &report);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInjectedFault);
  // Both views rolled back to their pre-refresh (now stale) contents.
  for (const auto& [name, contents] : view_before) {
    EXPECT_EQ(db_.GetTable(name).SnapshotUncounted().Sorted().ToString(),
              contents)
        << name;
  }
  EXPECT_EQ(db_.stats().degraded_retries, 0);
  EXPECT_EQ(db_.stats().recompute_fallbacks, 0);

  // The log was consumed, so the stale views are NOT healed by another
  // refresh — that's the documented fail-fast contract. RepairView is the
  // recovery path.
  RefreshReport next;
  ASSERT_TRUE(vm_->TryRefresh({}, &next).ok());
  vm_->RepairView("v_spj");
  vm_->RepairView("v_agg");
  ExpectViewsMatchRecompute("after transient fail-fast");
}

TEST_F(LadderTest, ParseAndNameRoundTrip) {
  for (const DegradePolicy policy :
       {DegradePolicy::kFailFast, DegradePolicy::kRetry,
        DegradePolicy::kRecompute, DegradePolicy::kQuarantine}) {
    const auto parsed = ParseDegradePolicy(DegradePolicyName(policy));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(ParseDegradePolicy("never").has_value());
}

// Random fault storms: refresh under a probabilistic plan must always end
// with every serviceable view byte-equal to recompute, and quarantined
// views repairable — for every seed.
TEST_F(LadderTest, RandomRateStormsAlwaysConverge) {
  const int seeds = ChaosSeeds();
  for (int seed = 0; seed < seeds; ++seed) {
    Database db;
    testing::LoadRunningExample(&db);
    ViewManager vm(&db);
    vm.DefineView("v_spj", testing::RunningExampleSpjPlan(db));
    vm.DefineView("v_agg", testing::RunningExampleAggPlan(db));
    EXPECT_TRUE(vm.Update("parts", {Value("P1")}, {"price"},
                          {Value(10.0 + seed)}));
    EXPECT_TRUE(vm.Insert("parts", {Value("P7"), Value(70.0)}));
    EXPECT_TRUE(vm.Insert("devices_parts", {Value("D1"), Value("P7")}));

    FaultPlan plan;
    plan.rate = 0.3;
    plan.seed = static_cast<uint64_t>(seed);
    plan.max_fires = (seed % 4);  // 0 faults .. deep ladder walks
    FaultInjector injector(plan);
    RefreshOptions options;
    options.fault = &injector;
    RefreshReport report;
    const std::string context = "seed " + std::to_string(seed);
    ASSERT_TRUE(vm.TryRefresh(options, &report).ok()) << context;

    for (const std::string name : {"v_spj", "v_agg"}) {
      if (vm.IsQuarantined(name)) {
        vm.RepairView(name);
      }
      testing::ExpectViewMatchesRecompute(
          &db, vm.GetView(name).view().plan, name, context);
    }
    // A follow-up fault-free refresh must succeed.
    EXPECT_TRUE(vm.Update("parts", {Value("P7")}, {"price"},
                          {Value(71.0)}));
    RefreshReport clean;
    ASSERT_TRUE(vm.TryRefresh({}, &clean).ok()) << context;
    EXPECT_EQ(clean.results.size(), 2u) << context;
  }
}

}  // namespace
}  // namespace idivm
