// Property tests: for random databases, random modification batches and a
// catalogue of view shapes covering every Q_SPJADU operator, the maintained
// view must equal recomputation — across all compiler option combinations
// (minimization on/off, caches on/off, specialized γ rules on/off,
// diff-only rule branches on/off).

#include <string>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/core/compose.h"
#include "src/core/maintainer.h"
#include "src/core/modification_log.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

// Small value domains force joins, group collisions and condition flips.
constexpr int64_t kJoinDomain = 8;

void LoadRandomDatabase(Database* db, Rng* rng, int64_t rows_per_table) {
  Table& r = db->CreateTable("r",
                             Schema({{"rid", DataType::kInt64},
                                     {"rb", DataType::kInt64},
                                     {"rc", DataType::kDouble},
                                     {"rs", DataType::kString}}),
                             {"rid"});
  Relation r_data(r.schema());
  for (int64_t i = 0; i < rows_per_table; ++i) {
    r_data.Append({Value(i), Value(rng->UniformInt(0, kJoinDomain - 1)),
                   Value(static_cast<double>(rng->UniformInt(0, 50))),
                   Value(rng->Bernoulli(0.5) ? "x" : "y")});
  }
  r.BulkLoadUncounted(r_data);

  Table& s = db->CreateTable("s",
                             Schema({{"sid", DataType::kInt64},
                                     {"sd", DataType::kInt64},
                                     {"se", DataType::kDouble}}),
                             {"sid"});
  Relation s_data(s.schema());
  for (int64_t i = 0; i < kJoinDomain; ++i) {
    s_data.Append({Value(i), Value(rng->UniformInt(0, 3)),
                   Value(static_cast<double>(rng->UniformInt(0, 20)))});
  }
  s.BulkLoadUncounted(s_data);

  Table& t = db->CreateTable("t",
                             Schema({{"tid", DataType::kInt64},
                                     {"tb", DataType::kInt64},
                                     {"tw", DataType::kDouble}}),
                             {"tid"});
  Relation t_data(t.schema());
  for (int64_t i = 0; i < rows_per_table / 2; ++i) {
    t_data.Append({Value(i), Value(rng->UniformInt(0, kJoinDomain - 1)),
                   Value(static_cast<double>(rng->UniformInt(0, 30)))});
  }
  t.BulkLoadUncounted(t_data);
}

PlanPtr MakeViewPlan(const std::string& shape, const Database& db) {
  (void)db;
  const PlanPtr r = PlanNode::Scan("r");
  const PlanPtr s = PlanNode::Scan("s");
  const PlanPtr t = PlanNode::Scan("t");
  if (shape == "select") {
    return PlanNode::Select(r, Gt(Col("rc"), Lit(Value(20.0))));
  }
  if (shape == "project_fn") {
    return PlanNode::Project(
        r, {{Col("rid"), "rid"},
            {Add(Col("rc"), Mul(Col("rb"), Lit(Value(int64_t{2})))), "score"},
            {Col("rs"), "tag"}});
  }
  if (shape == "join") {
    return PlanNode::Join(r, s, Eq(Col("rb"), Col("sid")));
  }
  if (shape == "join_select_project") {
    PlanPtr joined = PlanNode::Join(r, s, Eq(Col("rb"), Col("sid")));
    joined = PlanNode::Select(joined, Gt(Col("se"), Lit(Value(5.0))));
    return PlanNode::Project(joined, {{Col("rid"), "rid"},
                                      {Col("sid"), "sid"},
                                      {Add(Col("rc"), Col("se")), "total"}});
  }
  if (shape == "theta_join") {
    // Non-equi condition plus an equi conjunct.
    return PlanNode::Join(
        r, s, And(Eq(Col("rb"), Col("sid")), Lt(Col("rc"), Col("se"))));
  }
  if (shape == "three_way_join") {
    PlanPtr joined = PlanNode::Join(r, s, Eq(Col("rb"), Col("sid")));
    return PlanNode::Join(std::move(joined), t, Eq(Col("sd"), Col("tb")));
  }
  if (shape == "agg_sum_count") {
    return PlanNode::Aggregate(r, {"rb"},
                               {{AggFunc::kSum, Col("rc"), "total"},
                                {AggFunc::kCount, nullptr, "n"}});
  }
  if (shape == "agg_avg") {
    return PlanNode::Aggregate(r, {"rs"},
                               {{AggFunc::kAvg, Col("rc"), "avg_c"},
                                {AggFunc::kSum, Col("rc"), "sum_c"}});
  }
  if (shape == "agg_min_max") {
    return PlanNode::Aggregate(r, {"rb"},
                               {{AggFunc::kMin, Col("rc"), "lo"},
                                {AggFunc::kMax, Col("rc"), "hi"}});
  }
  if (shape == "agg_over_join") {
    PlanPtr joined = PlanNode::Join(r, s, Eq(Col("rb"), Col("sid")));
    return PlanNode::Aggregate(std::move(joined), {"sd"},
                               {{AggFunc::kSum, Col("rc"), "total"},
                                {AggFunc::kCount, nullptr, "n"}});
  }
  if (shape == "select_above_agg") {
    PlanPtr agg = PlanNode::Aggregate(
        PlanNode::Join(r, s, Eq(Col("rb"), Col("sid"))), {"sd"},
        {{AggFunc::kSum, Col("rc"), "total"}});
    return PlanNode::Select(std::move(agg),
                            Gt(Col("total"), Lit(Value(30.0))));
  }
  if (shape == "union_all") {
    PlanPtr left = PlanNode::Project(
        r, {{Col("rid"), "k"}, {Col("rc"), "v"}});
    PlanPtr right = PlanNode::Project(
        t, {{Col("tid"), "k"}, {Col("tw"), "v"}});
    return PlanNode::UnionAll(std::move(left), std::move(right), "b");
  }
  if (shape == "semijoin") {
    // r rows with at least one heavy t partner (existential filter).
    return PlanNode::SemiJoin(
        r, t, And(Eq(Col("rb"), Col("tb")), Gt(Col("tw"), Lit(Value(15.0)))));
  }
  if (shape == "agg_above_semijoin") {
    PlanPtr semi = PlanNode::SemiJoin(
        r, t, And(Eq(Col("rb"), Col("tb")), Gt(Col("tw"), Lit(Value(15.0)))));
    return PlanNode::Aggregate(std::move(semi), {"rs"},
                               {{AggFunc::kSum, Col("rc"), "total"},
                                {AggFunc::kCount, nullptr, "n"}});
  }
  if (shape == "antisemijoin") {
    // r rows whose rb has no matching t row with tw above a threshold.
    return PlanNode::AntiSemiJoin(
        r, t, And(Eq(Col("rb"), Col("tb")), Gt(Col("tw"), Lit(Value(15.0)))));
  }
  if (shape == "agg_above_antisemijoin") {
    PlanPtr anti = PlanNode::AntiSemiJoin(
        r, t, And(Eq(Col("rb"), Col("tb")), Gt(Col("tw"), Lit(Value(15.0)))));
    return PlanNode::Aggregate(std::move(anti), {"rs"},
                               {{AggFunc::kSum, Col("rc"), "total"}});
  }
  if (shape == "nested_aggregates") {
    // γ over π over γ: per-rb totals, then distribution of totals.
    PlanPtr inner = PlanNode::Aggregate(
        r, {"rb"}, {{AggFunc::kSum, Col("rc"), "total"},
                    {AggFunc::kCount, nullptr, "n"}});
    PlanPtr bucketed = PlanNode::Project(
        inner, {{Col("rb"), "rb"},
                {Mod(Col("n"), Lit(Value(int64_t{3}))), "bucket"},
                {Col("total"), "total"}});
    return PlanNode::Aggregate(std::move(bucketed), {"bucket"},
                               {{AggFunc::kSum, Col("total"), "grand"},
                                {AggFunc::kCount, nullptr, "groups"}});
  }
  if (shape == "join_above_agg") {
    // γ output joined with a base table (operators above blocking rules).
    PlanPtr agg = PlanNode::Aggregate(
        r, {"rb"}, {{AggFunc::kSum, Col("rc"), "total"}});
    return PlanNode::Join(std::move(agg), s, Eq(Col("rb"), Col("sid")));
  }
  if (shape == "antisemijoin_over_join") {
    // (r ⋈ s) ⋉̄ t: negation above a join.
    PlanPtr joined = PlanNode::Join(r, s, Eq(Col("rb"), Col("sid")));
    return PlanNode::AntiSemiJoin(
        std::move(joined), t,
        And(Eq(Col("sd"), Col("tb")), Gt(Col("tw"), Lit(Value(20.0)))));
  }
  if (shape == "union_of_joins") {
    PlanPtr left = PlanNode::Project(
        PlanNode::Join(r, s, Eq(Col("rb"), Col("sid"))),
        {{Col("rid"), "id"}, {Add(Col("rc"), Col("se")), "val"}});
    PlanPtr right = PlanNode::Project(
        t, {{Col("tid"), "id"}, {Col("tw"), "val"}});
    return PlanNode::UnionAll(std::move(left), std::move(right), "b");
  }
  if (shape == "select_project_select") {
    // Stacked σ/π/σ: repeated retargeting of conditions through functions.
    PlanPtr inner = PlanNode::Select(r, Gt(Col("rc"), Lit(Value(5.0))));
    PlanPtr projected = PlanNode::Project(
        inner, {{Col("rid"), "rid"},
                {Sub(Col("rc"), Lit(Value(5.0))), "margin"},
                {Col("rs"), "rs"}});
    return PlanNode::Select(std::move(projected),
                            Lt(Col("margin"), Lit(Value(30.0))));
  }
  IDIVM_UNREACHABLE("unknown shape " + shape);
}

// One random batch of modifications across all three tables.
void ApplyRandomBatch(Database* db, ModificationLogger* logger, Rng* rng,
                      int64_t* next_rid, int64_t* next_tid) {
  (void)db;
  const int ops = static_cast<int>(rng->UniformInt(3, 10));
  for (int i = 0; i < ops; ++i) {
    const int choice = static_cast<int>(rng->UniformInt(0, 9));
    switch (choice) {
      case 0:  // insert into r
        (void)logger->Insert("r", {Value((*next_rid)++),
                             Value(rng->UniformInt(0, kJoinDomain - 1)),
                             Value(static_cast<double>(
                                 rng->UniformInt(0, 50))),
                             Value(rng->Bernoulli(0.5) ? "x" : "y")});
        break;
      case 1: {  // delete from r (may miss)
        (void)logger->Delete("r", {Value(rng->UniformInt(0, *next_rid - 1))});
        break;
      }
      case 2:
      case 3: {  // update r non-conditional value
        (void)logger->Update("r", {Value(rng->UniformInt(0, *next_rid - 1))},
                       {"rc"},
                       {Value(static_cast<double>(rng->UniformInt(0, 50)))});
        break;
      }
      case 4: {  // update r join attribute (condition flip)
        (void)logger->Update("r", {Value(rng->UniformInt(0, *next_rid - 1))},
                       {"rb"}, {Value(rng->UniformInt(0, kJoinDomain - 1))});
        break;
      }
      case 5: {  // update r grouping string
        (void)logger->Update("r", {Value(rng->UniformInt(0, *next_rid - 1))},
                       {"rs"}, {Value(rng->Bernoulli(0.5) ? "x" : "y")});
        break;
      }
      case 6: {  // update s
        (void)logger->Update("s", {Value(rng->UniformInt(0, kJoinDomain - 1))},
                       {"se"},
                       {Value(static_cast<double>(rng->UniformInt(0, 20)))});
        break;
      }
      case 7: {  // insert into t
        (void)logger->Insert("t", {Value((*next_tid)++),
                             Value(rng->UniformInt(0, kJoinDomain - 1)),
                             Value(static_cast<double>(
                                 rng->UniformInt(0, 30)))});
        break;
      }
      case 8: {  // delete from t
        (void)logger->Delete("t", {Value(rng->UniformInt(0, *next_tid - 1))});
        break;
      }
      case 9: {  // update t condition attribute
        (void)logger->Update("t", {Value(rng->UniformInt(0, *next_tid - 1))},
                       {"tw"},
                       {Value(static_cast<double>(rng->UniformInt(0, 30)))});
        break;
      }
    }
  }
}

struct PropertyCase {
  std::string shape;
  CompilerOptions options;
  uint64_t seed;
  std::string name;
};

std::vector<PropertyCase> MakeCases() {
  const std::vector<std::string> shapes = {
      "select",          "project_fn",      "join",
      "join_select_project", "theta_join",  "three_way_join",
      "agg_sum_count",   "agg_avg",         "agg_min_max",
      "agg_over_join",   "select_above_agg", "union_all",
      "antisemijoin",    "agg_above_antisemijoin",
      "nested_aggregates", "join_above_agg", "antisemijoin_over_join",
      "union_of_joins",  "select_project_select",
      "semijoin",        "agg_above_semijoin"};

  std::vector<std::pair<std::string, CompilerOptions>> option_sets;
  {
    CompilerOptions defaults;
    option_sets.emplace_back("default", defaults);
    CompilerOptions no_min = defaults;
    no_min.minimize = false;
    option_sets.emplace_back("nomin", no_min);
    CompilerOptions no_cache = defaults;
    no_cache.use_caches = false;
    option_sets.emplace_back("nocache", no_cache);
    CompilerOptions general_agg = defaults;
    general_agg.specialized_aggregate_rules = false;
    option_sets.emplace_back("generalagg", general_agg);
    CompilerOptions general_rules = defaults;
    general_rules.rules.prefer_diff_only_branches = false;
    option_sets.emplace_back("generalrules", general_rules);
    CompilerOptions assist = defaults;
    assist.view_assisted_inserts = true;
    option_sets.emplace_back("assist", assist);
  }

  std::vector<PropertyCase> cases;
  for (const std::string& shape : shapes) {
    for (const auto& [opt_name, options] : option_sets) {
      for (uint64_t seed : {1u, 2u, 3u}) {
        PropertyCase c;
        c.shape = shape;
        c.options = options;
        c.seed = seed;
        c.name = shape + "_" + opt_name + "_s" + std::to_string(seed);
        cases.push_back(std::move(c));
      }
    }
  }
  return cases;
}

class IvmPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(IvmPropertyTest, MaintainedViewEqualsRecompute) {
  const PropertyCase& param = GetParam();
  Database db;
  Rng rng(param.seed * 7919 + 13);
  LoadRandomDatabase(&db, &rng, /*rows_per_table=*/40);
  int64_t next_rid = 40;
  int64_t next_tid = 20;

  const PlanPtr plan = MakeViewPlan(param.shape, db);
  Maintainer maintainer(&db, CompileView("v", plan, db, param.options));
  testing::ExpectViewMatchesRecompute(&db, maintainer.view().plan, "v",
                                      "initial materialization");

  ModificationLogger logger(&db);
  for (int round = 0; round < 6; ++round) {
    ApplyRandomBatch(&db, &logger, &rng, &next_rid, &next_tid);
    maintainer.Maintain(logger.NetChanges());
    logger.Clear();
    testing::ExpectViewMatchesRecompute(
        &db, maintainer.view().plan, "v",
        "round " + std::to_string(round) + " of " + param.name);
    if (::testing::Test::HasFailure()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IvmPropertyTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace idivm
