// Tests for ∆-script structures: registry lookup, the Fig. 7-style printer,
// the Fig. 6 rule-DAG rendering, and script shape invariants.

#include "gtest/gtest.h"
#include "src/core/compose.h"
#include "src/core/rule_dag.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

class DeltaScriptTest : public ::testing::Test {
 protected:
  DeltaScriptTest() { testing::LoadRunningExample(&db_); }
  Database db_;
};

TEST_F(DeltaScriptTest, RegistryLookup) {
  const CompiledView view =
      CompileView("v", testing::RunningExampleSpjPlan(db_), db_);
  ASSERT_FALSE(view.script.diff_registry.empty());
  const auto& [name, schema] = view.script.diff_registry.front();
  const DiffSchema* found = view.script.FindDiffSchema(name);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, schema);
  EXPECT_EQ(view.script.FindDiffSchema("no_such_diff"), nullptr);
}

TEST_F(DeltaScriptTest, PrinterShowsFig7Shape) {
  const CompiledView view =
      CompileView("vp", testing::RunningExampleAggPlan(db_), db_);
  const std::string text = view.script.ToString();
  // Numbered steps, APPLY statements with phases, the blocking γ step with
  // its cache and output diffs.
  EXPECT_NE(text.find("1. "), std::string::npos);
  EXPECT_NE(text.find("(cache-update)"), std::string::npos);
  EXPECT_NE(text.find("(view-update)"), std::string::npos);
  EXPECT_NE(text.find("RETURNING"), std::string::npos);
  EXPECT_NE(text.find("γ-MAINTAIN[did; sum(price)→cost]"),
            std::string::npos);
  EXPECT_NE(text.find("mode=incremental"), std::string::npos);
}

TEST_F(DeltaScriptTest, DagShowsBlockingAggregation) {
  const CompiledView view =
      CompileView("vp", testing::RunningExampleAggPlan(db_), db_);
  const std::string dag = view.dag.ToString();
  EXPECT_NE(dag.find("base i-diff"), std::string::npos);
  EXPECT_NE(dag.find("[blocking]"), std::string::npos);
  // Fused pass-throughs are annotated.
  EXPECT_NE(dag.find("[fused]"), std::string::npos);
}

TEST_F(DeltaScriptTest, EveryComputedDiffIsRegistered) {
  const CompiledView view =
      CompileView("vp", testing::RunningExampleAggPlan(db_), db_);
  for (const ScriptStep& step : view.script.steps) {
    if (step.compute.has_value() && !step.compute->raw_relation) {
      EXPECT_NE(view.script.FindDiffSchema(step.compute->out_name), nullptr)
          << step.compute->out_name;
    }
    if (step.apply.has_value()) {
      EXPECT_NE(view.script.FindDiffSchema(step.apply->diff_name), nullptr)
          << step.apply->diff_name;
    }
  }
}

TEST_F(DeltaScriptTest, ApplyOrderDeletesBeforeUpdatesBeforeInserts) {
  const CompiledView view =
      CompileView("v", testing::RunningExampleSpjPlan(db_), db_);
  int last_rank = -1;
  for (const ScriptStep& step : view.script.steps) {
    if (!step.apply.has_value() ||
        step.apply->target_table != "v") {
      continue;
    }
    const DiffSchema* schema =
        view.script.FindDiffSchema(step.apply->diff_name);
    ASSERT_NE(schema, nullptr);
    int rank = 0;
    switch (schema->type()) {
      case DiffType::kDelete:
        rank = 0;
        break;
      case DiffType::kUpdate:
        rank = 1;
        break;
      case DiffType::kInsert:
        rank = 2;
        break;
    }
    EXPECT_GE(rank, last_rank) << "apply order violated";
    last_rank = std::max(last_rank, rank);
  }
}

}  // namespace
}  // namespace idivm
