// Unit tests for scalar expressions: arithmetic, comparisons, three-valued
// logic, functions, binding and printing.

#include "gtest/gtest.h"
#include "src/expr/expr.h"

namespace idivm {
namespace {

const Schema kSchema({{"a", DataType::kDouble},
                      {"b", DataType::kInt64},
                      {"s", DataType::kString}});
const Row kRow = {Value(2.5), Value(int64_t{4}), Value("hi")};

Value Eval(const ExprPtr& e) { return e->Eval(kRow, kSchema); }

TEST(ExprTest, ColumnAndLiteral) {
  EXPECT_DOUBLE_EQ(Eval(Col("a")).AsDouble(), 2.5);
  EXPECT_EQ(Eval(Lit(Value(int64_t{7}))).AsInt64(), 7);
}

TEST(ExprTest, Arithmetic) {
  EXPECT_DOUBLE_EQ(Eval(Add(Col("a"), Col("b"))).NumericAsDouble(), 6.5);
  EXPECT_EQ(Eval(Mul(Col("b"), Lit(Value(int64_t{3})))).AsInt64(), 12);
  EXPECT_EQ(Eval(Sub(Col("b"), Lit(Value(int64_t{1})))).AsInt64(), 3);
  EXPECT_DOUBLE_EQ(
      Eval(Div(Col("b"), Lit(Value(int64_t{8})))).AsDouble(), 0.5);
  EXPECT_EQ(Eval(Mod(Col("b"), Lit(Value(int64_t{3})))).AsInt64(), 1);
  // Division by zero yields NULL (keeps ∆-scripts from crashing).
  EXPECT_TRUE(Eval(Div(Col("b"), Lit(Value(int64_t{0})))).is_null());
  // NULL propagates.
  EXPECT_TRUE(Eval(Add(Col("a"), Lit(Value::Null()))).is_null());
}

TEST(ExprTest, Comparisons) {
  EXPECT_EQ(Eval(Lt(Col("a"), Col("b"))).AsInt64(), 1);
  EXPECT_EQ(Eval(Ge(Col("a"), Col("b"))).AsInt64(), 0);
  EXPECT_EQ(Eval(Eq(Col("s"), Lit(Value("hi")))).AsInt64(), 1);
  EXPECT_EQ(Eval(Ne(Col("s"), Lit(Value("hi")))).AsInt64(), 0);
  EXPECT_TRUE(Eval(Eq(Col("a"), Lit(Value::Null()))).is_null());
}

TEST(ExprTest, KleeneLogic) {
  const ExprPtr t = Lit(Value(int64_t{1}));
  const ExprPtr f = Lit(Value(int64_t{0}));
  const ExprPtr u = Lit(Value::Null());
  EXPECT_EQ(Eval(And(t, f)).AsInt64(), 0);
  EXPECT_EQ(Eval(And(f, u)).AsInt64(), 0);   // false AND unknown = false
  EXPECT_TRUE(Eval(And(t, u)).is_null());    // true AND unknown = unknown
  EXPECT_EQ(Eval(Or(t, u)).AsInt64(), 1);    // true OR unknown = true
  EXPECT_TRUE(Eval(Or(f, u)).is_null());
  EXPECT_EQ(Eval(Not(f)).AsInt64(), 1);
  EXPECT_TRUE(Eval(Not(u)).is_null());
}

TEST(ExprTest, Functions) {
  EXPECT_DOUBLE_EQ(Eval(Expr::Function("abs", {Lit(Value(-3.5))}))
                       .AsDouble(),
                   3.5);
  EXPECT_EQ(Eval(Expr::Function("abs", {Lit(Value(int64_t{-3}))})).AsInt64(),
            3);
  EXPECT_DOUBLE_EQ(Eval(Expr::Function("round", {Lit(Value(2.6))}))
                       .AsDouble(),
                   3.0);
  EXPECT_EQ(Eval(Expr::Function("coalesce",
                                {Lit(Value::Null()), Col("b")}))
                .AsInt64(),
            4);
  EXPECT_EQ(Eval(Expr::Function("isnull", {Lit(Value::Null())})).AsInt64(),
            1);
  EXPECT_EQ(Eval(Expr::Function("isnull", {Col("a")})).AsInt64(), 0);
  EXPECT_DOUBLE_EQ(Eval(Expr::Function(
                            "if", {Lit(Value(int64_t{1})), Col("a"),
                                   Lit(Value(0.0))}))
                       .AsDouble(),
                   2.5);
  EXPECT_EQ(Eval(Expr::Function("concat", {Col("s"), Lit(Value("!"))}))
                .AsString(),
            "hi!");
}

TEST(ExprTest, PredicateHolds) {
  EXPECT_TRUE(PredicateHolds(Gt(Col("b"), Lit(Value(int64_t{3}))), kRow,
                             kSchema));
  EXPECT_FALSE(PredicateHolds(Gt(Col("b"), Lit(Value(int64_t{9}))), kRow,
                              kSchema));
  // NULL predicates do not hold.
  EXPECT_FALSE(PredicateHolds(Eq(Col("b"), Lit(Value::Null())), kRow,
                              kSchema));
}

TEST(ExprTest, BoundExprMatchesUnbound) {
  const ExprPtr e =
      And(Gt(Add(Col("a"), Col("b")), Lit(Value(5.0))),
          Eq(Col("s"), Lit(Value("hi"))));
  const BoundExpr bound(e, kSchema);
  EXPECT_EQ(bound.Eval(kRow).AsInt64(), Eval(e).AsInt64());
  EXPECT_TRUE(bound.Holds(kRow));
}

TEST(ExprTest, ToString) {
  EXPECT_EQ(Add(Col("a"), Lit(Value(int64_t{1})))->ToString(), "(a + 1)");
  EXPECT_EQ(Eq(Col("s"), Lit(Value("x")))->ToString(), "(s = \"x\")");
  EXPECT_EQ(Not(Col("a"))->ToString(), "NOT a");
  EXPECT_EQ(Expr::Function("abs", {Col("a")})->ToString(), "abs(a)");
}

}  // namespace
}  // namespace idivm
