// robust::Backoff (decorrelated-jitter retry pacing) and robust::Deadline
// (the per-refresh watchdog) — the two timing primitives the maintenance
// service leans on. Both are tested for the properties the service
// depends on: deterministic schedules per seed, delays bounded by
// [base, max], and one counted trip per armed deadline.

#include <chrono>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/robust/backoff.h"
#include "src/robust/deadline.h"
#include "src/robust/status.h"

namespace idivm {
namespace {

using robust::Backoff;
using robust::BackoffOptions;
using robust::Deadline;

std::vector<double> Delays(Backoff* backoff, int n) {
  std::vector<double> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(backoff->NextDelaySeconds());
  return out;
}

TEST(BackoffTest, FirstDelayIsBase) {
  BackoffOptions options;
  options.base_seconds = 0.025;
  Backoff backoff(options);
  EXPECT_DOUBLE_EQ(backoff.NextDelaySeconds(), 0.025);
  EXPECT_EQ(backoff.attempts(), 1);
}

TEST(BackoffTest, DeterministicPerSeed) {
  BackoffOptions options;
  options.base_seconds = 0.010;
  options.max_seconds = 5.0;
  options.seed = 42;
  Backoff a(options);
  Backoff b(options);
  EXPECT_EQ(Delays(&a, 20), Delays(&b, 20));

  options.seed = 43;
  Backoff c(options);
  Backoff d(options);
  const std::vector<double> reseeded = Delays(&c, 20);
  EXPECT_EQ(reseeded, Delays(&d, 20));
  // A different seed draws a different jitter stream (the first delay is
  // always base, so compare the jittered tail).
  Backoff e(BackoffOptions{.seed = 42});
  EXPECT_NE(Delays(&e, 20), reseeded);
}

TEST(BackoffTest, DelaysStayWithinBounds) {
  BackoffOptions options;
  options.base_seconds = 0.010;
  options.max_seconds = 0.5;
  options.multiplier = 3.0;
  options.seed = 7;
  Backoff backoff(options);
  bool grew = false;
  for (int i = 0; i < 200; ++i) {
    const double delay = backoff.NextDelaySeconds();
    EXPECT_GE(delay, options.base_seconds);
    EXPECT_LE(delay, options.max_seconds);
    grew = grew || delay > options.base_seconds;
  }
  // The jitter window opens past base almost surely within 200 draws.
  EXPECT_TRUE(grew);
  EXPECT_EQ(backoff.attempts(), 200);
}

TEST(BackoffTest, MultiplierOneNeverGrows) {
  BackoffOptions options;
  options.base_seconds = 0.020;
  options.multiplier = 1.0;
  Backoff backoff(options);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(backoff.NextDelaySeconds(), 0.020);
  }
}

TEST(BackoffTest, ResetRestartsScheduleAtBase) {
  BackoffOptions options;
  options.base_seconds = 0.010;
  options.max_seconds = 10.0;
  Backoff backoff(options);
  Delays(&backoff, 10);
  backoff.Reset();
  EXPECT_EQ(backoff.attempts(), 0);
  EXPECT_DOUBLE_EQ(backoff.NextDelaySeconds(), options.base_seconds);
  EXPECT_EQ(backoff.attempts(), 1);
}

TEST(BackoffTest, CapAppliesWhenBaseEqualsMax) {
  BackoffOptions options;
  options.base_seconds = 0.125;
  options.max_seconds = 0.125;
  Backoff backoff(options);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(backoff.NextDelaySeconds(), 0.125);
  }
}

// ---- Deadline ----

TEST(DeadlineTest, DefaultConstructedNeverExpires) {
  Deadline deadline;
  EXPECT_FALSE(deadline.Expired());
  EXPECT_TRUE(deadline.Check("step:0").ok());
  EXPECT_EQ(deadline.trips(), 0);
}

TEST(DeadlineTest, ArmedDeadlineExpiresAndCountsOneTrip) {
  Deadline deadline;
  deadline.Arm(0.0005);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(deadline.Expired());
  const Status status = deadline.Check("apply:v");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.message().find("apply:v"), std::string::npos);
  // Later checks still fail but the trip was already counted.
  EXPECT_FALSE(deadline.Check("step:1").ok());
  EXPECT_FALSE(deadline.Check("step:2").ok());
  EXPECT_EQ(deadline.trips(), 1);
}

TEST(DeadlineTest, TripForcesExpiry) {
  Deadline deadline;
  deadline.Arm(3600.0);
  EXPECT_FALSE(deadline.Expired());
  EXPECT_TRUE(deadline.Check("step:0").ok());
  deadline.Trip();
  EXPECT_TRUE(deadline.Expired());
  EXPECT_EQ(deadline.Check("step:1").code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(deadline.trips(), 1);
}

TEST(DeadlineTest, DisarmClearsExpiry) {
  Deadline deadline;
  deadline.Arm(0.0005);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(deadline.Expired());
  deadline.Arm(0);
  EXPECT_FALSE(deadline.Expired());
  EXPECT_TRUE(deadline.Check("step:0").ok());
}

TEST(DeadlineTest, RearmCountsANewTrip) {
  Deadline deadline;
  for (int round = 1; round <= 3; ++round) {
    deadline.Arm(0.0001);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_FALSE(deadline.Check("step:0").ok());
    EXPECT_FALSE(deadline.Check("step:1").ok());
    EXPECT_EQ(deadline.trips(), round);
  }
}

}  // namespace
}  // namespace idivm
