// Unit tests for the catalog.

#include "gtest/gtest.h"
#include "src/storage/database.h"

namespace idivm {
namespace {

TEST(DatabaseTest, CreateHasGetDrop) {
  Database db;
  db.CreateTable("a", Schema({{"x", DataType::kInt64}}), {"x"});
  db.CreateTable("b", Schema({{"y", DataType::kInt64}}), {"y"});
  EXPECT_TRUE(db.HasTable("a"));
  EXPECT_FALSE(db.HasTable("c"));
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(db.GetTable("a").name(), "a");
  db.DropTable("a");
  EXPECT_FALSE(db.HasTable("a"));
}

TEST(DatabaseDeathTest, DuplicateTableAborts) {
  Database db;
  db.CreateTable("a", Schema({{"x", DataType::kInt64}}), {"x"});
  EXPECT_DEATH(db.CreateTable("a", Schema({{"x", DataType::kInt64}}), {"x"}),
               "already exists");
}

TEST(DatabaseDeathTest, MissingTableAborts) {
  Database db;
  EXPECT_DEATH(db.GetTable("nope"), "no such table");
}

TEST(DatabaseTest, SharedStatsAcrossTables) {
  Database db;
  Table& a = db.CreateTable("a", Schema({{"x", DataType::kInt64}}), {"x"});
  Table& b = db.CreateTable("b", Schema({{"y", DataType::kInt64}}), {"y"});
  a.Insert({Value(int64_t{1})});
  b.Insert({Value(int64_t{2})});
  EXPECT_EQ(db.stats().tuple_writes, 2);
}

}  // namespace
}  // namespace idivm
