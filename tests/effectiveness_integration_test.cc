// Integration test for the Section 2 effectiveness guarantee: every i-diff
// idIVM applies during a maintenance round that contains no
// condition-attribute updates must satisfy its formal effectiveness
// condition with respect to the target's final state. (Condition-affecting
// updates use the documented delete+insert decomposition, whose pair is
// deliberately order-dependent — see DESIGN.md note 1 — so they are
// exercised separately by the recompute-equality property tests.)

#include <vector>

#include "gtest/gtest.h"
#include "src/core/compose.h"
#include "src/core/maintainer.h"
#include "src/core/modification_log.h"
#include "src/diff/effectiveness.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

struct AppliedDiff {
  std::string target;
  DiffInstance diff;
};

class EffectivenessIntegrationTest : public ::testing::Test {
 protected:
  EffectivenessIntegrationTest() { testing::LoadRunningExample(&db_); }

  void VerifyAllApplied(Maintainer& maintainer,
                        const std::vector<AppliedDiff>& applied) {
    for (const AppliedDiff& entry : applied) {
      const Relation post =
          db_.GetTable(entry.target).SnapshotUncounted();
      std::string why;
      EXPECT_TRUE(IsEffective(entry.diff, post, &why))
          << "non-effective " << entry.diff.schema().ToString() << " on "
          << entry.target << ": " << why;
    }
    (void)maintainer;
  }

  Database db_;
};

TEST_F(EffectivenessIntegrationTest, UpdateRoundEmitsEffectiveDiffs) {
  Maintainer m(&db_, CompileView("vp", testing::RunningExampleAggPlan(db_),
                                 db_));
  std::vector<AppliedDiff> applied;
  m.set_apply_observer([&](const std::string& target,
                           const DiffInstance& diff) {
    // Additive diffs carry deltas, not final values; their effectiveness is
    // definitional (they always reflect the final state once applied).
    if (!diff.schema().additive()) applied.push_back({target, diff});
  });
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(11.0)}));
  EXPECT_TRUE(logger.Update("parts", {Value("P2")}, {"price"}, {Value(21.0)}));
  m.Maintain(logger.NetChanges());
  EXPECT_FALSE(applied.empty());
  VerifyAllApplied(m, applied);
}

TEST_F(EffectivenessIntegrationTest, InsertDeleteRoundEmitsEffectiveDiffs) {
  Maintainer m(&db_, CompileView("v", testing::RunningExampleSpjPlan(db_),
                                 db_));
  std::vector<AppliedDiff> applied;
  m.set_apply_observer([&](const std::string& target,
                           const DiffInstance& diff) {
    applied.push_back({target, diff});
  });
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Insert("parts", {Value("P4"), Value(5.0)}));
  EXPECT_TRUE(logger.Insert("devices_parts", {Value("D1"), Value("P4")}));
  EXPECT_TRUE(logger.Delete("devices_parts", {Value("D2"), Value("P1")}));
  m.Maintain(logger.NetChanges());
  EXPECT_GE(applied.size(), 2u);
  VerifyAllApplied(m, applied);
}

TEST_F(EffectivenessIntegrationTest, ObserverSeesEveryApplyTarget) {
  Maintainer m(&db_, CompileView("vp", testing::RunningExampleAggPlan(db_),
                                 db_));
  std::set<std::string> targets;
  m.set_apply_observer(
      [&](const std::string& target, const DiffInstance& diff) {
        if (!diff.empty()) targets.insert(target);
      });
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(12.0)}));
  m.Maintain(logger.NetChanges());
  // Both the intermediate cache and the view receive diffs.
  EXPECT_EQ(targets.size(), 2u);
  EXPECT_TRUE(targets.count("vp") > 0);
}

}  // namespace
}  // namespace idivm
