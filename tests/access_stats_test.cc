// Unit tests for the Section 6 cost-model counters.

#include "gtest/gtest.h"
#include "src/storage/access_stats.h"

namespace idivm {
namespace {

TEST(AccessStatsTest, TotalCombinesAllCounters) {
  AccessStats s;
  s.index_lookups = 3;
  s.tuple_reads = 5;
  s.tuple_writes = 7;
  EXPECT_EQ(s.TotalAccesses(), 15);
}

TEST(AccessStatsTest, AddAndSubtract) {
  AccessStats a;
  a.index_lookups = 1;
  a.tuple_reads = 2;
  AccessStats b;
  b.tuple_reads = 10;
  b.tuple_writes = 4;
  a += b;
  EXPECT_EQ(a.index_lookups, 1);
  EXPECT_EQ(a.tuple_reads, 12);
  EXPECT_EQ(a.tuple_writes, 4);
  const AccessStats d = a - b;
  EXPECT_EQ(d.tuple_reads, 2);
  EXPECT_EQ(d.tuple_writes, 0);
}

TEST(AccessStatsTest, ResetAndToString) {
  AccessStats s;
  s.tuple_reads = 9;
  s.Reset();
  EXPECT_EQ(s.TotalAccesses(), 0);
  s.index_lookups = 2;
  EXPECT_NE(s.ToString().find("lookups=2"), std::string::npos);
}

}  // namespace
}  // namespace idivm
