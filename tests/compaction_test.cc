// Unit tests for modification-log compaction (Section 5: combining multiple
// modifications of one tuple into a single effective change).

#include "gtest/gtest.h"
#include "src/diff/compaction.h"

namespace idivm {
namespace {

const Schema kSchema({{"id", DataType::kInt64},
                      {"v", DataType::kDouble}});
const std::vector<size_t> kKey = {0};

Modification Ins(int64_t id, double v) {
  Modification m;
  m.kind = DiffType::kInsert;
  m.post = {Value(id), Value(v)};
  return m;
}
Modification Del(int64_t id, double v) {
  Modification m;
  m.kind = DiffType::kDelete;
  m.pre = {Value(id), Value(v)};
  return m;
}
Modification Upd(int64_t id, double pre, double post) {
  Modification m;
  m.kind = DiffType::kUpdate;
  m.pre = {Value(id), Value(pre)};
  m.post = {Value(id), Value(post)};
  return m;
}

TEST(CompactionTest, InsertThenUpdateBecomesInsert) {
  const auto net = ComputeNetChanges(kSchema, kKey,
                                     {Ins(1, 1.0), Upd(1, 1.0, 5.0)});
  ASSERT_EQ(net.size(), 1u);
  EXPECT_EQ(net[0].kind, DiffType::kInsert);
  EXPECT_DOUBLE_EQ(net[0].post[1].AsDouble(), 5.0);
}

TEST(CompactionTest, InsertThenDeleteCancels) {
  EXPECT_TRUE(
      ComputeNetChanges(kSchema, kKey, {Ins(1, 1.0), Del(1, 1.0)}).empty());
}

TEST(CompactionTest, UpdateChainKeepsFirstPreLastPost) {
  const auto net = ComputeNetChanges(
      kSchema, kKey, {Upd(1, 1.0, 2.0), Upd(1, 2.0, 3.0), Upd(1, 3.0, 4.0)});
  ASSERT_EQ(net.size(), 1u);
  EXPECT_EQ(net[0].kind, DiffType::kUpdate);
  EXPECT_DOUBLE_EQ(net[0].pre[1].AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(net[0].post[1].AsDouble(), 4.0);
}

TEST(CompactionTest, UpdateThenDeleteBecomesDeleteWithOriginalPre) {
  const auto net = ComputeNetChanges(kSchema, kKey,
                                     {Upd(1, 1.0, 2.0), Del(1, 2.0)});
  ASSERT_EQ(net.size(), 1u);
  EXPECT_EQ(net[0].kind, DiffType::kDelete);
  EXPECT_DOUBLE_EQ(net[0].pre[1].AsDouble(), 1.0);
}

TEST(CompactionTest, DeleteThenReinsertBecomesUpdateOrNothing) {
  const auto changed = ComputeNetChanges(kSchema, kKey,
                                         {Del(1, 1.0), Ins(1, 9.0)});
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0].kind, DiffType::kUpdate);
  EXPECT_DOUBLE_EQ(changed[0].pre[1].AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(changed[0].post[1].AsDouble(), 9.0);
  // Identical re-insert: net no-op.
  EXPECT_TRUE(
      ComputeNetChanges(kSchema, kKey, {Del(1, 1.0), Ins(1, 1.0)}).empty());
}

TEST(CompactionTest, NoOpUpdateDropped) {
  EXPECT_TRUE(ComputeNetChanges(kSchema, kKey,
                                {Upd(1, 2.0, 9.0), Upd(1, 9.0, 2.0)})
                  .empty());
}

TEST(CompactionTest, IndependentKeysKeepOrder) {
  const auto net = ComputeNetChanges(
      kSchema, kKey, {Upd(2, 1.0, 2.0), Ins(5, 3.0), Del(7, 4.0)});
  ASSERT_EQ(net.size(), 3u);
  EXPECT_EQ(net[0].pre[0].AsInt64(), 2);
  EXPECT_EQ(net[1].post[0].AsInt64(), 5);
  EXPECT_EQ(net[2].pre[0].AsInt64(), 7);
}

TEST(CompactionDeathTest, InconsistentHistoriesAbort) {
  EXPECT_DEATH(
      ComputeNetChanges(kSchema, kKey, {Ins(1, 1.0), Ins(1, 2.0)}),
      "double insert");
  EXPECT_DEATH(
      ComputeNetChanges(kSchema, kKey, {Del(1, 1.0), Del(1, 1.0)}),
      "deleted key");
  Modification key_change;
  key_change.kind = DiffType::kUpdate;
  key_change.pre = {Value(int64_t{1}), Value(1.0)};
  key_change.post = {Value(int64_t{2}), Value(1.0)};
  EXPECT_DEATH(ComputeNetChanges(kSchema, kKey, {key_change}), "immutable");
}

}  // namespace
}  // namespace idivm
