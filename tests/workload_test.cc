// Workload generator tests: the devices/parts family (Figs. 1/5/11) builds
// correct data shapes and both IVM engines maintain its views.

#include "gtest/gtest.h"
#include "src/core/compose.h"
#include "src/core/maintainer.h"
#include "src/sdbt/sdbt.h"
#include "src/tivm/tuple_ivm.h"
#include "src/workload/devices_parts.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

DevicesPartsConfig SmallConfig() {
  DevicesPartsConfig config;
  config.num_parts = 200;
  config.num_devices = 100;
  config.fanout = 5;
  config.selectivity_pct = 30;
  return config;
}

TEST(DevicesPartsTest, GeneratedShapes) {
  Database db;
  DevicesPartsConfig config = SmallConfig();
  DevicesPartsWorkload workload(&db, config);
  EXPECT_EQ(db.GetTable("parts").size(), 200u);
  EXPECT_EQ(db.GetTable("devices").size(), 100u);
  EXPECT_EQ(db.GetTable("devices_parts").size(), 500u);  // devices × fanout

  // Selectivity: roughly 30% phones.
  const Relation devices = db.GetTable("devices").SnapshotUncounted();
  int64_t phones = 0;
  for (const Row& row : devices.rows()) {
    if (row[1].AsString() == "phone") ++phones;
  }
  EXPECT_GT(phones, 15);
  EXPECT_LT(phones, 45);
}

TEST(DevicesPartsTest, ExtraJoinTablesPresent) {
  Database db;
  DevicesPartsConfig config = SmallConfig();
  config.extra_joins = 3;
  DevicesPartsWorkload workload(&db, config);
  for (int j = 1; j <= 3; ++j) {
    EXPECT_EQ(db.GetTable("r" + std::to_string(j)).size(), 500u);
  }
  // The extended SPJ view compiles and materializes.
  Maintainer m(&db, CompileView("v", workload.SpjViewPlan(), db));
  EXPECT_TRUE(db.GetTable("v").schema().HasColumn("x3"));
}

TEST(DevicesPartsTest, IdIvmMaintainsAggView) {
  Database db;
  DevicesPartsWorkload workload(&db, SmallConfig());
  Maintainer m(&db, CompileView("vp", workload.AggViewPlan(), db));
  ModificationLogger logger(&db);
  workload.ApplyPriceUpdates(&logger, 20);
  m.Maintain(logger.NetChanges());
  testing::ExpectViewMatchesRecompute(&db, m.view().plan, "vp");
}

TEST(DevicesPartsTest, IdIvmMaintainsMixedChanges) {
  Database db;
  DevicesPartsWorkload workload(&db, SmallConfig());
  Maintainer m(&db, CompileView("vp", workload.AggViewPlan(), db));
  ModificationLogger logger(&db);
  workload.ApplyMixedChanges(&logger, /*inserts=*/10, /*deletes=*/10,
                             /*updates=*/10);
  m.Maintain(logger.NetChanges());
  testing::ExpectViewMatchesRecompute(&db, m.view().plan, "vp");
}

TEST(DevicesPartsTest, TupleIvmMatchesIdIvm) {
  // Two engines over two copies of the same workload: identical views.
  Database db_id;
  Database db_t;
  DevicesPartsWorkload w_id(&db_id, SmallConfig());
  DevicesPartsWorkload w_t(&db_t, SmallConfig());
  Maintainer m(&db_id, CompileView("vp", w_id.AggViewPlan(), db_id));
  TupleIvm tivm(&db_t, "vp", w_t.AggViewPlan());

  ModificationLogger log_id(&db_id);
  ModificationLogger log_t(&db_t);
  w_id.ApplyPriceUpdates(&log_id, 25);
  w_t.ApplyPriceUpdates(&log_t, 25);  // same seed → same updates
  m.Maintain(log_id.NetChanges());
  tivm.Maintain(log_t.NetChanges());

  EXPECT_TRUE(db_id.GetTable("vp").SnapshotUncounted().BagEquals(
      db_t.GetTable("vp").SnapshotUncounted()));
}

TEST(SdbtTest, FixedAndStreamsMatchRecompute) {
  for (const auto mode :
       {SdbtDevicesParts::Mode::kFixed, SdbtDevicesParts::Mode::kStreams}) {
    Database db;
    DevicesPartsWorkload workload(&db, SmallConfig());
    SdbtDevicesParts sdbt(&db, SmallConfig(), "vp", mode);
    ModificationLogger logger(&db);
    workload.ApplyPriceUpdates(&logger, 20);
    sdbt.Maintain(logger.NetChanges());
    testing::ExpectViewMatchesRecompute(&db, workload.AggViewPlan(), "vp",
                                        mode == SdbtDevicesParts::Mode::kFixed
                                            ? "fixed"
                                            : "streams");
  }
}

TEST(SdbtTest, StreamsMaintainsAuxiliaryView) {
  Database db;
  DevicesPartsConfig config = SmallConfig();
  DevicesPartsWorkload workload(&db, config);
  SdbtDevicesParts sdbt(&db, config, "vp", SdbtDevicesParts::Mode::kStreams);
  ModificationLogger logger(&db);
  workload.ApplyPriceUpdates(&logger, 10);
  const MaintainResult result = sdbt.Maintain(logger.NetChanges());
  // The streams overhead: aux_pd writes show up as cache-update cost.
  EXPECT_GT(result.cache_update.accesses.tuple_writes, 0);

  // aux_pd prices must now agree with parts.
  const Relation aux = db.GetTable("__sdbt_pd_vp").SnapshotUncounted();
  for (const Row& row : aux.rows()) {
    const auto part =
        db.GetTable("parts").LookupByKeyUncounted({row[1]});
    ASSERT_TRUE(part.has_value());
    EXPECT_EQ(row[2].NumericAsDouble(), (*part)[1].NumericAsDouble());
  }
}

TEST(SdbtTest, FixedHasNoCacheMaintenance) {
  Database db;
  DevicesPartsConfig config = SmallConfig();
  DevicesPartsWorkload workload(&db, config);
  SdbtDevicesParts sdbt(&db, config, "vp", SdbtDevicesParts::Mode::kFixed);
  ModificationLogger logger(&db);
  workload.ApplyPriceUpdates(&logger, 10);
  const MaintainResult result = sdbt.Maintain(logger.NetChanges());
  EXPECT_EQ(result.cache_update.accesses.TotalAccesses(), 0);
}

}  // namespace
}  // namespace idivm
