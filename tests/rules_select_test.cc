// Unit tests for the σ propagation rules (Table 6): branch selection
// (diff-only vs Input-accessing), filter shapes, and produced diff types.

#include "gtest/gtest.h"
#include "src/algebra/plan_printer.h"
#include "src/core/rules.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

class RulesSelectTest : public ::testing::Test {
 protected:
  RulesSelectTest() {
    db_.CreateTable("r", Schema({{"id", DataType::kInt64},
                                 {"a", DataType::kDouble},
                                 {"b", DataType::kDouble}}),
                    {"id"});
  }

  RuleContext MakeContext(const ExprPtr& predicate) {
    select_plan_ = PlanNode::Select(PlanNode::Scan("r"), predicate);
    RuleContext ctx;
    ctx.op = select_plan_.get();
    ctx.db = &db_;
    ctx.node_name = "sel";
    ctx.output_schema = db_.GetTable("r").schema();
    ctx.output_ids = {"id"};
    ctx.input_post = {PlanNode::Scan("r")};
    ctx.input_pre = {PlanNode::Scan("r", StateTag::kPre)};
    ctx.input_schemas = {db_.GetTable("r").schema()};
    ctx.input_ids = {{"id"}};
    return ctx;
  }

  DiffSchema FullUpdateDiff() {
    return DiffSchema(DiffType::kUpdate, "r", db_.GetTable("r").schema(),
                      {"id"}, {"a", "b"}, {"a"});
  }

  Database db_;
  PlanPtr select_plan_;
};

TEST_F(RulesSelectTest, InsertFilteredByPostCondition) {
  RuleContext ctx = MakeContext(Gt(Col("a"), Lit(Value(1.0))));
  const DiffSchema ins(DiffType::kInsert, "r", db_.GetTable("r").schema(),
                       {"id"}, {}, {"a", "b"});
  const auto out = PropagateThroughSelect(ctx, "d", ins);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kInsert);
  EXPECT_NE(PlanToString(out[0].query).find("a__post"), std::string::npos);
  EXPECT_TRUE(IsTransientOnly(out[0].query));  // no base accesses
}

TEST_F(RulesSelectTest, DeleteBlueOptimizationUsesPre) {
  RuleContext ctx = MakeContext(Gt(Col("a"), Lit(Value(1.0))));
  const DiffSchema del(DiffType::kDelete, "r", db_.GetTable("r").schema(),
                       {"id"}, {"a", "b"}, {});
  const auto out = PropagateThroughSelect(ctx, "d", del);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NE(PlanToString(out[0].query).find("a__pre"), std::string::npos);
}

TEST_F(RulesSelectTest, DeleteWithoutPrePassesThrough) {
  RuleContext ctx = MakeContext(Gt(Col("a"), Lit(Value(1.0))));
  const DiffSchema del(DiffType::kDelete, "r", db_.GetTable("r").schema(),
                       {"id"}, {}, {});
  const auto out = PropagateThroughSelect(ctx, "d", del);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].query->kind(), PlanKind::kRelationRef);  // pass-through
}

TEST_F(RulesSelectTest, NonConditionalUpdateStaysSingleUpdate) {
  // Condition on b, update on a: only a ∆u comes out (the idIVM fast path).
  RuleContext ctx = MakeContext(Gt(Col("b"), Lit(Value(1.0))));
  const auto out = PropagateThroughSelect(ctx, "d", FullUpdateDiff());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kUpdate);
  EXPECT_TRUE(IsTransientOnly(out[0].query));
}

TEST_F(RulesSelectTest, ConditionalUpdateSplitsThreeWays) {
  // Condition on a, update on a: ∆u + ∆+ + ∆− (Table 6's full split).
  RuleContext ctx = MakeContext(Gt(Col("a"), Lit(Value(1.0))));
  const auto out = PropagateThroughSelect(ctx, "d", FullUpdateDiff());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kUpdate);
  EXPECT_EQ(out[1].schema.type(), DiffType::kInsert);
  EXPECT_EQ(out[2].schema.type(), DiffType::kDelete);
  // Diff covers the full row: all three branches avoid base accesses.
  for (const PropagatedDiff& p : out) {
    EXPECT_TRUE(IsTransientOnly(p.query)) << p.rule_description;
  }
}

TEST_F(RulesSelectTest, NarrowDiffFallsBackToInput) {
  // A diff keyed on a strict subset of the row (no b value): the insert
  // branch must consult Input_post for full tuples.
  RuleContext ctx = MakeContext(Gt(Col("a"), Lit(Value(1.0))));
  const DiffSchema narrow(DiffType::kUpdate, "r",
                          db_.GetTable("r").schema(), {"id"}, {}, {"a"});
  const auto out = PropagateThroughSelect(ctx, "d", narrow);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_FALSE(IsTransientOnly(out[1].query));  // insert reads Input_post
}

TEST_F(RulesSelectTest, AblationForcesGeneralBranches) {
  RuleContext ctx = MakeContext(Gt(Col("a"), Lit(Value(1.0))));
  ctx.options.prefer_diff_only_branches = false;
  const auto out = PropagateThroughSelect(ctx, "d", FullUpdateDiff());
  ASSERT_EQ(out.size(), 3u);
  int input_accessing = 0;
  for (const PropagatedDiff& p : out) {
    if (!IsTransientOnly(p.query)) ++input_accessing;
  }
  EXPECT_GE(input_accessing, 2);
}

}  // namespace
}  // namespace idivm
