// Unit tests for Relation: bag semantics, sorting, equality, row helpers.

#include "gtest/gtest.h"
#include "src/types/relation.h"

namespace idivm {
namespace {

Schema TwoCol() {
  return Schema({{"k", DataType::kInt64}, {"v", DataType::kString}});
}

TEST(RelationTest, AppendAndSize) {
  Relation r(TwoCol());
  EXPECT_TRUE(r.empty());
  r.Append({Value(int64_t{1}), Value("a")});
  r.Append({Value(int64_t{2}), Value("b")});
  EXPECT_EQ(r.size(), 2u);
}

TEST(RelationDeathTest, ArityChecked) {
  Relation r(TwoCol());
  EXPECT_DEATH(r.Append({Value(int64_t{1})}), "arity");
}

TEST(RelationTest, BagEqualsIgnoresOrderRespectsMultiplicity) {
  Relation a(TwoCol(), {{Value(int64_t{1}), Value("x")},
                        {Value(int64_t{2}), Value("y")},
                        {Value(int64_t{1}), Value("x")}});
  Relation b(TwoCol(), {{Value(int64_t{2}), Value("y")},
                        {Value(int64_t{1}), Value("x")},
                        {Value(int64_t{1}), Value("x")}});
  EXPECT_TRUE(a.BagEquals(b));
  // Drop one duplicate: multiplicities differ.
  Relation c(TwoCol(), {{Value(int64_t{1}), Value("x")},
                        {Value(int64_t{2}), Value("y")}});
  EXPECT_FALSE(a.BagEquals(c));
}

TEST(RelationTest, BagEqualsChecksColumnNames) {
  Relation a(TwoCol());
  Relation b(Schema({{"k", DataType::kInt64}, {"w", DataType::kString}}));
  EXPECT_FALSE(a.BagEquals(b));
}

TEST(RelationTest, SortedIsStableAndLexicographic) {
  Relation r(TwoCol(), {{Value(int64_t{2}), Value("b")},
                        {Value(int64_t{1}), Value("z")},
                        {Value(int64_t{1}), Value("a")}});
  const Relation s = r.Sorted();
  EXPECT_EQ(s.rows()[0][1].AsString(), "a");
  EXPECT_EQ(s.rows()[1][1].AsString(), "z");
  EXPECT_EQ(s.rows()[2][0].AsInt64(), 2);
}

TEST(RowHelpersTest, ProjectAndHashAndCompare) {
  const Row row = {Value(int64_t{1}), Value("a"), Value(3.5)};
  EXPECT_EQ(ProjectRow(row, {2, 0}),
            (Row{Value(3.5), Value(int64_t{1})}));
  EXPECT_EQ(HashRowKey(row, {0}), HashRowKey({Value(1.0)}, {0}));
  EXPECT_EQ(CompareRows({Value(int64_t{1})}, {Value(int64_t{1})}), 0);
  EXPECT_LT(CompareRows({Value(int64_t{1})}, {Value(int64_t{2})}), 0);
  // Prefix rows compare shorter-first.
  EXPECT_LT(CompareRows({Value(int64_t{1})},
                        {Value(int64_t{1}), Value(int64_t{0})}),
            0);
}

TEST(RelationTest, ToStringRendersTable) {
  Relation r(TwoCol(), {{Value(int64_t{10}), Value("hi")}});
  const std::string s = r.ToString();
  EXPECT_NE(s.find("| k "), std::string::npos);
  EXPECT_NE(s.find("| 10"), std::string::npos);
  EXPECT_NE(s.find("hi"), std::string::npos);
}

}  // namespace
}  // namespace idivm
