// BSMA workload tests (Section 7.1): all eight Fig. 9b views compile,
// materialize non-trivially, and are maintained correctly under the paper's
// workload (user.tweetsnum / user.favornum updates) by both idIVM and the
// tuple-based baseline.

#include "gtest/gtest.h"
#include "src/core/compose.h"
#include "src/core/maintainer.h"
#include "src/sql/parser.h"
#include "src/tivm/tuple_ivm.h"
#include "src/workload/bsma.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

BsmaConfig TinyConfig() {
  BsmaConfig config;
  config.users = 120;
  config.friends_per_user = 5;
  config.num_cities = 6;
  config.num_topics = 10;
  return config;
}

TEST(BsmaTest, GeneratedRatios) {
  Database db;
  BsmaWorkload workload(&db, TinyConfig());
  const int64_t users = 120;
  EXPECT_EQ(db.GetTable("user").size(), static_cast<size_t>(users));
  EXPECT_EQ(db.GetTable("microblog").size(), static_cast<size_t>(20 * users));
  EXPECT_EQ(db.GetTable("friendlist").size(), static_cast<size_t>(5 * users));
  // 10% of tweets retweeted twice → 4×users rows; 20% mentioned twice →
  // 8×users; 40% with two events → 16×users.
  EXPECT_EQ(db.GetTable("retweets").size(), static_cast<size_t>(4 * users));
  EXPECT_EQ(db.GetTable("mentions").size(), static_cast<size_t>(8 * users));
  EXPECT_EQ(db.GetTable("rel_event_microblog").size(),
            static_cast<size_t>(16 * users));
}

class BsmaViewTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BsmaViewTest, IdIvmMaintainsView) {
  Database db;
  BsmaWorkload workload(&db, TinyConfig());
  const PlanPtr plan = workload.ViewPlan(GetParam());
  Maintainer m(&db, CompileView("v", plan, db));
  EXPECT_GT(db.GetTable("v").size(), 0u)
      << GetParam() << " materialized empty — workload too small?";
  ModificationLogger logger(&db);
  workload.ApplyUserUpdates(&logger, 30);
  m.Maintain(logger.NetChanges());
  testing::ExpectViewMatchesRecompute(&db, m.view().plan, "v", GetParam());
}

TEST_P(BsmaViewTest, TupleIvmMaintainsView) {
  Database db;
  BsmaWorkload workload(&db, TinyConfig());
  const PlanPtr plan = workload.ViewPlan(GetParam());
  TupleIvm tivm(&db, "v", plan);
  ModificationLogger logger(&db);
  workload.ApplyUserUpdates(&logger, 30);
  tivm.Maintain(logger.NetChanges());
  testing::ExpectViewMatchesRecompute(&db, plan, "v", GetParam());
}

TEST_P(BsmaViewTest, SqlTextMatchesHandBuiltPlan) {
  Database db;
  BsmaWorkload workload(&db, TinyConfig());
  const sql::ParseResult parsed =
      sql::ParseView(BsmaWorkload::ViewSql(GetParam()), db);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const Relation from_sql = testing::Recompute(&db, parsed.plan);
  const Relation from_plan =
      testing::Recompute(&db, workload.ViewPlan(GetParam()));
  EXPECT_TRUE(from_sql.BagEquals(from_plan))
      << GetParam() << ": SQL schema "
      << from_sql.schema().ToString() << " vs plan schema "
      << from_plan.schema().ToString();
}

INSTANTIATE_TEST_SUITE_P(AllViews, BsmaViewTest,
                         ::testing::ValuesIn(BsmaWorkload::ViewNames()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

}  // namespace
}  // namespace idivm
