// The observability layer (src/obs): metrics registry semantics, export
// determinism, and span tracing. The load-bearing assertions are the
// docs/OBSERVABILITY.md contract checks — per-span AccessStats attribution
// sums *exactly* to the database-wide counters at every thread count, and
// the emitted Chrome trace JSON stays schema-valid.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/compose.h"
#include "src/core/maintainer.h"
#include "src/core/modification_log.h"
#include "src/core/view_manager.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/workload/devices_parts.h"

namespace idivm {
namespace {

using obs::Counter;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::TraceRecorder;
using obs::TraceSpan;

// ---- Metrics registry ----------------------------------------------------

TEST(ObsMetricsTest, CounterIncrementsAndResets) {
  MetricsRegistry registry;
  Counter& c = registry.counter("test_total");
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
  EXPECT_EQ(registry.CounterValue("test_total"), 42);
  // Same name must return the same counter.
  registry.counter("test_total").Increment();
  EXPECT_EQ(c.value(), 43);
  registry.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(ObsMetricsTest, CounterValueDoesNotCreate) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("never_incremented"), 0);
  EXPECT_EQ(registry.ExportText().find("never_incremented"),
            std::string::npos);
}

TEST(ObsMetricsTest, HistogramBucketsArePowersOfFour) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("test_hist");
  h.Observe(0.5);   // <= 1
  h.Observe(3.0);   // <= 4
  h.Observe(100);   // <= 256
  h.Observe(-7);    // clamps to 0, <= 1
  EXPECT_EQ(h.count(), 4);
  EXPECT_NEAR(h.sum(), 103.5, 1e-6);
  EXPECT_EQ(h.CumulativeCount(0), 2);                    // le 1
  EXPECT_EQ(h.CumulativeCount(1), 3);                    // le 4
  EXPECT_EQ(h.CumulativeCount(4), 4);                    // le 256
  EXPECT_EQ(h.CumulativeCount(Histogram::kBuckets), 4);  // +inf
  EXPECT_EQ(Histogram::BucketBound(0), 1.0);
  EXPECT_EQ(Histogram::BucketBound(3), 64.0);
}

TEST(ObsMetricsTest, ExportTextIsSortedAndVersioned) {
  MetricsRegistry registry;
  registry.counter("zebra_total").Increment(3);
  registry.counter("aardvark_total").Increment(1);
  registry.histogram("middle_hist").Observe(2);
  const std::string text = registry.ExportText();
  EXPECT_EQ(text.find("# idivm-metrics 1\n"), 0u) << text;
  const size_t a = text.find("counter aardvark_total 1");
  const size_t m = text.find("histogram middle_hist count 1");
  const size_t z = text.find("counter zebra_total 3");
  ASSERT_NE(a, std::string::npos) << text;
  ASSERT_NE(m, std::string::npos) << text;
  ASSERT_NE(z, std::string::npos) << text;
  EXPECT_LT(a, m);
  EXPECT_LT(m, z);
}

TEST(ObsMetricsTest, RuleAccessCounterNameEscapesLabels) {
  EXPECT_EQ(obs::RuleAccessCounterName("q7", "apply d3 -> v"),
            "idivm_rule_accesses_total{view=\"q7\",rule=\"apply d3 -> v\"}");
  // Quotes and backslashes in labels must stay one well-formed line.
  const std::string name = obs::RuleAccessCounterName("a\"b", "c\\d");
  EXPECT_EQ(name,
            "idivm_rule_accesses_total{view=\"a\\\"b\",rule=\"c\\\\d\"}");
  EXPECT_EQ(obs::EscapeLabelValue("tab\there"), "tab_here");
}

// ---- Export determinism --------------------------------------------------

// Strips non-deterministic lines (wall-clock histograms) from an export.
std::string StripTimingLines(const std::string& text) {
  std::istringstream in(text);
  std::string out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("_seconds") != std::string::npos) continue;
    out += line;
    out += '\n';
  }
  return out;
}

// One full maintenance round on a fresh devices/parts database, charging
// the process-global registry.
void RunOneMaintenanceRound() {
  Database db;
  DevicesPartsWorkload workload(&db, DevicesPartsConfig{});
  Maintainer m(&db, CompileView("vp", workload.AggViewPlan(), db));
  ModificationLogger logger(&db);
  workload.ApplyPriceUpdates(&logger, 50);
  MaintainResult result;
  const Status status = m.TryMaintain(logger.NetChanges(), {}, &result);
  ASSERT_TRUE(status.ok()) << status.ToString();
}

TEST(ObsMetricsTest, GlobalSnapshotIsDeterministicAcrossIdenticalRuns) {
  MetricsRegistry& global = MetricsRegistry::Global();
  global.Reset();
  RunOneMaintenanceRound();
  const std::string first = StripTimingLines(global.ExportText());
  global.Reset();
  RunOneMaintenanceRound();
  const std::string second = StripTimingLines(global.ExportText());
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_GT(global.CounterValue("idivm_epochs_total"), 0);
  EXPECT_GT(global.CounterValue("idivm_apply_diff_tuples_total"), 0);
}

// ---- Span tracing --------------------------------------------------------

int64_t SumSpanAccesses(const std::vector<TraceSpan>& spans,
                        const std::string& category) {
  int64_t sum = 0;
  for (const TraceSpan& span : spans) {
    if (span.category == category) sum += span.accesses.TotalAccesses();
  }
  return sum;
}

// The acceptance check of docs/OBSERVABILITY.md: per-rule AccessStats
// deltas captured in spans sum exactly to the database-wide counters the
// epoch published, at every thread count, and spans nest (rules inside
// their epoch, applies inside their rule). "Parallel" in the name opts the
// 8-thread run into the TSan CI job.
TEST(ObsTraceTest, ParallelSpanAttributionSumsExactly) {
  for (const int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Database db;
    DevicesPartsWorkload workload(&db, DevicesPartsConfig{});
    Maintainer m(&db, CompileView("vp", workload.AggViewPlan(), db));
    ModificationLogger logger(&db);
    workload.ApplyPriceUpdates(&logger, 50);
    db.stats().Reset();

    TraceRecorder recorder;
    MaintainOptions options;
    options.threads = threads;
    options.trace = &recorder;
    MaintainResult result;
    const Status status = m.TryMaintain(logger.NetChanges(), options, &result);
    ASSERT_TRUE(status.ok()) << status.ToString();

    const std::vector<TraceSpan> spans = recorder.Snapshot();
    const int64_t global_delta = db.stats().TotalAccesses();

    // Exactly one epoch span, carrying the exact database-wide delta.
    std::vector<TraceSpan> epochs;
    for (const TraceSpan& span : spans) {
      if (span.category == "epoch") epochs.push_back(span);
    }
    ASSERT_EQ(epochs.size(), 1u);
    EXPECT_EQ(epochs[0].accesses.TotalAccesses(), global_delta);
    EXPECT_EQ(result.TotalAccesses().TotalAccesses() +
                  SumSpanAccesses(spans, "setup"),
              global_delta);

    // The rule spans partition the epoch's charges (setup holds the rest).
    EXPECT_EQ(SumSpanAccesses(spans, "rule") + SumSpanAccesses(spans, "setup"),
              global_delta);

    // One rule span per ∆-script step; every rule nests inside the epoch's
    // wall-clock window, every apply inside a rule on its own thread.
    const TraceSpan& epoch = epochs[0];
    std::set<int> tids;
    for (const TraceSpan& span : spans) {
      if (span.category == "rule" || span.category == "apply") {
        EXPECT_GE(span.start_us, epoch.start_us) << span.name;
        EXPECT_LE(span.start_us + span.dur_us, epoch.start_us + epoch.dur_us)
            << span.name;
        tids.insert(span.tid);
      }
      if (span.category == "apply") {
        bool nested = false;
        for (const TraceSpan& rule : spans) {
          if (rule.category == "rule" && rule.tid == span.tid &&
              rule.start_us <= span.start_us &&
              span.start_us + span.dur_us <= rule.start_us + rule.dur_us) {
            nested = true;
            break;
          }
        }
        EXPECT_TRUE(nested) << span.name << " not nested in any rule span";
      }
    }
    // Sequential runs stay on the calling thread; parallel runs use at most
    // the pool's workers.
    if (threads == 1) {
      EXPECT_EQ(tids.size(), 1u);
    } else {
      EXPECT_LE(tids.size(), static_cast<size_t>(threads));
    }
  }
}

TEST(ObsTraceTest, FailedEpochRecordsZeroChargeSpan) {
  Database db;
  DevicesPartsWorkload workload(&db, DevicesPartsConfig{});
  Maintainer m(&db, CompileView("vp", workload.AggViewPlan(), db));
  ModificationLogger logger(&db);
  workload.ApplyPriceUpdates(&logger, 50);
  db.stats().Reset();

  TraceRecorder recorder;
  MaintainOptions options;
  options.trace = &recorder;
  options.max_epoch_ops = 1;  // guaranteed kResourceExhausted
  MaintainResult result;
  const Status status = m.TryMaintain(logger.NetChanges(), options, &result);
  ASSERT_FALSE(status.ok());

  // The rolled-back epoch published nothing, so its span charges nothing
  // and no rule spans survive.
  ASSERT_EQ(recorder.size(), 1u);
  const TraceSpan span = recorder.Snapshot()[0];
  EXPECT_EQ(span.category, "epoch");
  EXPECT_EQ(span.accesses.TotalAccesses(), 0);
  bool failed_arg = false;
  for (const auto& [key, value] : span.args) {
    if (key == "failed" && value == 1) failed_arg = true;
  }
  EXPECT_TRUE(failed_arg);
  EXPECT_EQ(db.stats().TotalAccesses(), 0);
}

TEST(ObsTraceTest, RefreshRecordsLadderSpans) {
  Database db;
  DevicesPartsWorkload workload(&db, DevicesPartsConfig{});
  ViewManager vm(&db);
  vm.DefineView("vp", workload.AggViewPlan());
  workload.ApplyPriceUpdates(&vm.logger(), 20);

  TraceRecorder recorder;
  RefreshOptions options;
  options.trace = &recorder;
  options.max_epoch_ops = 1;  // every epoch fails -> ladder rung 2
  options.degrade = DegradePolicy::kQuarantine;
  RefreshReport report;
  const Status status = vm.TryRefresh(options, &report);
  EXPECT_TRUE(status.ok()) << status.ToString();
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].rung, 2);

  bool saw_refresh = false;
  bool saw_ladder = false;
  for (const TraceSpan& span : recorder.Snapshot()) {
    if (span.category == "refresh") saw_refresh = true;
    if (span.category == "ladder" && span.name == "recompute vp") {
      saw_ladder = true;
      EXPECT_GT(span.accesses.TotalAccesses(), 0);
    }
  }
  EXPECT_TRUE(saw_refresh);
  EXPECT_TRUE(saw_ladder);
}

// ---- Trace JSON schema ---------------------------------------------------

// A minimal JSON reader, just rich enough to verify the Chrome trace_event
// schema the recorder promises (docs/OBSERVABILITY.md "Trace file format").
// Not a general parser: no floats beyond integers, which is exactly what
// the recorder emits.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  bool Fail(const std::string& why) {
    error_ = why + " at offset " + std::to_string(pos_);
    return false;
  }
  const std::string& error() const { return error_; }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(ToByte(text_[pos_]))) ++pos_;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        if (pos_ + 1 >= text_.size()) return Fail("dangling escape");
        const char esc = text_[pos_ + 1];
        if (esc == 'u') {
          if (pos_ + 5 >= text_.size()) return Fail("short \\u escape");
          for (int i = 2; i < 6; ++i) {
            if (!std::isxdigit(ToByte(text_[pos_ + i]))) {
              return Fail("bad \\u escape");
            }
          }
          out->push_back('?');
          pos_ += 6;
          continue;
        }
        if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
            esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return Fail("bad escape");
        }
        out->push_back(esc);
        pos_ += 2;
        continue;
      }
      if (ToByte(text_[pos_]) < 0x20) return Fail("raw control character");
      out->push_back(text_[pos_++]);
    }
    return Consume('"');
  }

  bool ParseInt(int64_t* out) {
    SkipSpace();
    const size_t start = pos_;
    if (Peek('-')) ++pos_;
    while (pos_ < text_.size() && std::isdigit(ToByte(text_[pos_]))) ++pos_;
    if (pos_ == start) return Fail("expected integer");
    *out = std::stoll(text_.substr(start, pos_ - start));
    return true;
  }

  // Parses an object of string keys whose values are strings, integers, or
  // one-level nested objects of the same shape (the "args" object).
  struct FlatValue {
    std::string string_value;
    int64_t int_value = 0;
    bool is_string = false;
  };
  using FlatObject = std::map<std::string, FlatValue>;

  bool ParseObject(FlatObject* out, FlatObject* nested_args) {
    if (!Consume('{')) return false;
    if (Peek('}')) return Consume('}');
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      SkipSpace();
      if (Peek('"')) {
        FlatValue value;
        value.is_string = true;
        if (!ParseString(&value.string_value)) return false;
        (*out)[key] = value;
      } else if (Peek('{')) {
        if (nested_args == nullptr || key != "args") {
          return Fail("unexpected nested object under " + key);
        }
        if (!ParseObject(nested_args, nullptr)) return false;
      } else {
        FlatValue value;
        if (!ParseInt(&value.int_value)) return false;
        (*out)[key] = value;
      }
      if (Peek(',')) {
        Consume(',');
        continue;
      }
      return Consume('}');
    }
  }

  size_t pos() const { return pos_; }

 private:
  static unsigned char ToByte(char c) { return static_cast<unsigned char>(c); }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

TEST(ObsTraceTest, ChromeTraceJsonStaysSchemaValid) {
  Database db;
  DevicesPartsWorkload workload(&db, DevicesPartsConfig{});
  Maintainer m(&db, CompileView("vp", workload.AggViewPlan(), db));
  ModificationLogger logger(&db);
  workload.ApplyPriceUpdates(&logger, 20);

  TraceRecorder recorder;
  MaintainOptions options;
  options.threads = 2;
  options.trace = &recorder;
  MaintainResult result;
  ASSERT_TRUE(m.TryMaintain(logger.NetChanges(), options, &result).ok());
  // A span name with JSON-hostile characters must survive escaping.
  TraceSpan hostile;
  hostile.name = "quote\" backslash\\ newline\n tab\t";
  hostile.category = "rule";
  recorder.Record(hostile);

  const std::string json = recorder.ToChromeTraceJson();

  JsonCursor cursor(json);
  JsonCursor::FlatObject top;
  ASSERT_TRUE(cursor.Consume('{')) << cursor.error();
  std::string key;
  ASSERT_TRUE(cursor.ParseString(&key)) << cursor.error();
  ASSERT_EQ(key, "traceEvents");
  ASSERT_TRUE(cursor.Consume(':')) << cursor.error();
  ASSERT_TRUE(cursor.Consume('[')) << cursor.error();

  size_t events = 0;
  size_t complete_events = 0;
  while (!cursor.Peek(']')) {
    JsonCursor::FlatObject event;
    JsonCursor::FlatObject args;
    ASSERT_TRUE(cursor.ParseObject(&event, &args)) << cursor.error();
    ++events;
    ASSERT_TRUE(event.count("ph"));
    const std::string ph = event.at("ph").string_value;
    ASSERT_TRUE(ph == "X" || ph == "M") << ph;
    ASSERT_TRUE(event.count("pid"));
    ASSERT_TRUE(event.count("tid"));
    ASSERT_TRUE(event.count("name"));
    if (ph == "X") {
      ++complete_events;
      ASSERT_TRUE(event.count("cat"));
      ASSERT_TRUE(event.count("ts"));
      ASSERT_TRUE(event.count("dur"));
      // Every complete event carries the cost-model args.
      ASSERT_TRUE(args.count("index_lookups"));
      ASSERT_TRUE(args.count("tuple_reads"));
      ASSERT_TRUE(args.count("tuple_writes"));
      ASSERT_TRUE(args.count("total_accesses"));
      EXPECT_EQ(args.at("total_accesses").int_value,
                args.at("index_lookups").int_value +
                    args.at("tuple_reads").int_value +
                    args.at("tuple_writes").int_value);
    }
    if (cursor.Peek(',')) cursor.Consume(',');
  }
  ASSERT_TRUE(cursor.Consume(']')) << cursor.error();
  EXPECT_EQ(complete_events, recorder.size());
  EXPECT_GT(events, complete_events);  // thread_name metadata present
}

}  // namespace
}  // namespace idivm
