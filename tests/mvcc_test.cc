// MVCC read subsystem (src/mvcc): version semantics, snapshot stability
// across refresh, GC metering, and the torn-read invariant under concurrent
// reader threads — the MvccParallelTest suite runs under TSan in CI
// alongside the parallel-maintenance tests.

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/view_manager.h"
#include "src/mvcc/snapshot.h"
#include "src/mvcc/table_version.h"
#include "src/obs/metrics.h"
#include "src/robust/fault_injection.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

using mvcc::Snapshot;
using mvcc::TableVersion;
using testing::ExpectViewMatchesRecompute;
using testing::LoadRunningExample;
using testing::Recompute;
using testing::RunningExampleAggPlan;
using testing::RunningExampleSpjPlan;

// Byte-comparable content fingerprint: sorted rows, pretty-printed.
std::string Fingerprint(const Relation& relation) {
  return relation.Sorted().ToString();
}

TEST(MvccTest, VersionLookupAndOverlaySemantics) {
  Database db;
  LoadRunningExample(&db);
  const Table& parts = db.GetTable("parts");

  const auto v1 = TableVersion::Materialize(parts, 1);
  EXPECT_EQ(v1->epoch(), 1u);
  EXPECT_EQ(v1->size(), 3u);
  EXPECT_EQ(v1->overlay_size(), 0u);
  ASSERT_TRUE(v1->LookupByKey({Value("P1")}).has_value());
  EXPECT_FALSE(v1->LookupByKey({Value("P9")}).has_value());

  // Derive: update P1's price, delete P3, insert P4.
  std::vector<Modification> delta;
  delta.push_back({DiffType::kUpdate,
                   {Value("P1"), Value(10.0)},
                   {Value("P1"), Value(11.0)}});
  delta.push_back({DiffType::kDelete, {Value("P3"), Value(20.0)}, {}});
  delta.push_back({DiffType::kInsert, {}, {Value("P4"), Value(40.0)}});
  const auto v2 = TableVersion::Derive(v1, delta, 2);

  EXPECT_EQ(v2->epoch(), 2u);
  EXPECT_EQ(v2->size(), 3u);
  EXPECT_EQ((*v2->LookupByKey({Value("P1")}))[1], Value(11.0));
  EXPECT_FALSE(v2->LookupByKey({Value("P3")}).has_value());  // tombstone
  ASSERT_TRUE(v2->LookupByKey({Value("P4")}).has_value());

  // v1 is immutable: deriving v2 changed nothing it serves.
  EXPECT_EQ((*v1->LookupByKey({Value("P1")}))[1], Value(10.0));
  ASSERT_TRUE(v1->LookupByKey({Value("P3")}).has_value());
  EXPECT_EQ(v1->size(), 3u);

  // Scan agrees with the live table after applying the same delta.
  Relation want(parts.schema(),
                {{Value("P1"), Value(11.0)},
                 {Value("P2"), Value(20.0)},
                 {Value("P4"), Value(40.0)}});
  EXPECT_TRUE(v2->Scan().BagEquals(want));
}

TEST(MvccTest, RebaseKeepsContents) {
  Database db;
  Table& t = db.CreateTable(
      "t", Schema({{"k", DataType::kInt64}, {"v", DataType::kInt64}}), {"k"});
  Relation seed(t.schema());
  for (int64_t k = 0; k < 40; ++k) seed.Append({Value(k), Value(k * 10)});
  t.BulkLoadUncounted(seed);

  auto version = TableVersion::Materialize(t, 1);
  // 20 updates on a 40-row base crosses the rebase threshold (overlay >= 16
  // and overlay*4 >= base rows): the result must be folded, overlay-free,
  // and content-identical.
  std::vector<Modification> delta;
  for (int64_t k = 0; k < 20; ++k) {
    delta.push_back({DiffType::kUpdate,
                     {Value(k), Value(k * 10)},
                     {Value(k), Value(k * 10 + 1)}});
  }
  const auto rebased = TableVersion::Derive(version, delta, 2);
  EXPECT_EQ(rebased->overlay_size(), 0u);
  EXPECT_EQ(rebased->size(), 40u);
  for (int64_t k = 0; k < 40; ++k) {
    const auto row = rebased->LookupByKey({Value(k)});
    ASSERT_TRUE(row.has_value());
    EXPECT_EQ((*row)[1], Value(k < 20 ? k * 10 + 1 : k * 10));
  }
}

TEST(MvccTest, GcCountsReleasedVersions) {
  auto& registry = obs::MetricsRegistry::Global();
  const int64_t versions_before =
      registry.CounterValue("idivm_snapshot_gc_versions_total");
  const int64_t bytes_before =
      registry.CounterValue("idivm_snapshot_gc_bytes_total");
  {
    Database db;
    LoadRunningExample(&db);
    auto v1 = TableVersion::Materialize(db.GetTable("parts"), 1);
    auto v2 = TableVersion::Derive(
        v1, {{DiffType::kInsert, {}, {Value("P4"), Value(40.0)}}}, 2);
    // Both versions (and the base they share) die here.
  }
  EXPECT_GE(registry.CounterValue("idivm_snapshot_gc_versions_total"),
            versions_before + 2);
  EXPECT_GT(registry.CounterValue("idivm_snapshot_gc_bytes_total"),
            bytes_before);
}

TEST(MvccTest, SnapshotStableAcrossRefresh) {
  Database db;
  LoadRunningExample(&db);
  ViewManager vm(&db);
  const PlanPtr plan = RunningExampleSpjPlan(db);
  vm.DefineView("vspj", plan);
  vm.EnableSnapshotReads();
  vm.TrackTableForSnapshots("parts");

  const Snapshot before = vm.OpenSnapshot();
  const std::string view_before = Fingerprint(before.Read("vspj").Scan());
  const std::string parts_before = Fingerprint(before.Read("parts").Scan());

  // Mutate and refresh: the held snapshot must not move.
  ASSERT_TRUE(vm.Update("parts", {Value("P1")}, {"price"}, {Value(99.0)}));
  ASSERT_TRUE(vm.Insert("devices_parts", {Value("D2"), Value("P2")}));
  vm.Refresh();

  EXPECT_EQ(Fingerprint(before.Read("vspj").Scan()), view_before);
  EXPECT_EQ(Fingerprint(before.Read("parts").Scan()), parts_before);

  // A fresh snapshot sees the refreshed state, which matches recompute.
  const Snapshot after = vm.OpenSnapshot();
  EXPECT_GT(after.epoch(), before.epoch());
  EXPECT_TRUE(after.Read("vspj").Scan().BagEquals(Recompute(&db, plan)));
  EXPECT_TRUE(after.Read("parts").Scan().BagEquals(
      db.GetTable("parts").SnapshotUncounted()));
  ExpectViewMatchesRecompute(&db, plan, "vspj");
}

// One observation a reader made: which table, at which published epoch,
// with what contents.
struct Observed {
  std::string table;
  uint64_t epoch;
  std::string fingerprint;
};

// The invariant scenario: a writer runs refresh rounds over the running
// example while `readers` threads open snapshots and scan. Every observed
// (table, epoch) must byte-match the recompute at that epoch — recorded by
// the writer right after each publish, while the tables are quiescent.
void RunTornReadScenario(int readers) {
  SCOPED_TRACE(::testing::Message() << "readers=" << readers);
  Database db;
  LoadRunningExample(&db);
  ViewManager vm(&db);
  const PlanPtr spj = RunningExampleSpjPlan(db);
  const PlanPtr agg = RunningExampleAggPlan(db);
  vm.DefineView("vspj", spj);
  vm.DefineView("vagg", agg);
  vm.EnableSnapshotReads();
  vm.TrackTableForSnapshots("parts");

  const std::vector<std::string> tables = {"vspj", "vagg", "parts"};
  // expected[table][epoch] -> fingerprint of the independently recomputed
  // contents at that epoch. Written by the writer between refreshes; read
  // only after the readers join.
  std::map<std::string, std::map<uint64_t, std::string>> expected;
  auto record_expected = [&] {
    const Snapshot snap = vm.OpenSnapshot();
    expected["vspj"][snap.Read("vspj").epoch()] =
        Fingerprint(Recompute(&db, spj));
    expected["vagg"][snap.Read("vagg").epoch()] =
        Fingerprint(Recompute(&db, agg));
    expected["parts"][snap.Read("parts").epoch()] =
        Fingerprint(db.GetTable("parts").SnapshotUncounted());
  };
  record_expected();

  std::atomic<bool> done{false};
  std::vector<std::vector<Observed>> seen(readers);
  std::vector<std::thread> pool;
  pool.reserve(readers);
  for (int r = 0; r < readers; ++r) {
    pool.emplace_back([&, r] {
      size_t iter = 0;
      while (!done.load(std::memory_order_acquire) || iter < 32) {
        const Snapshot snap = vm.OpenSnapshot();
        const std::string& table = tables[(iter + r) % tables.size()];
        const TableVersion& version = snap.Read(table);
        seen[r].push_back(
            {table, version.epoch(), Fingerprint(version.Scan())});
        ++iter;
      }
    });
  }

  const double prices[] = {31.0, 7.5, 18.0, 55.0, 12.0, 44.0};
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE(
        vm.Update("parts", {Value("P1")}, {"price"}, {Value(prices[round])}));
    // (D2,P2) and (D3,P1) are absent from the running example; each round
    // inserts one and deletes it again, so both directions flip the views.
    ASSERT_TRUE(vm.Insert(
        "devices_parts",
        {Value(round % 2 == 0 ? "D2" : "D3"),
         Value(round % 2 == 0 ? "P2" : "P1")}));
    vm.Refresh();
    record_expected();
    ASSERT_TRUE(vm.Delete(
        "devices_parts",
        {Value(round % 2 == 0 ? "D2" : "D3"),
         Value(round % 2 == 0 ? "P2" : "P1")}));
    vm.Refresh();
    record_expected();
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : pool) t.join();

  size_t observations = 0;
  for (const auto& per_reader : seen) {
    for (const Observed& obs : per_reader) {
      ++observations;
      const auto& per_table = expected[obs.table];
      const auto it = per_table.find(obs.epoch);
      ASSERT_NE(it, per_table.end())
          << obs.table << " observed at never-published epoch " << obs.epoch;
      EXPECT_EQ(it->second, obs.fingerprint)
          << obs.table << " torn at epoch " << obs.epoch;
    }
  }
  EXPECT_GT(observations, 0u);
}

TEST(MvccParallelTest, ReadersNeverObserveTornState1) {
  RunTornReadScenario(1);
}
TEST(MvccParallelTest, ReadersNeverObserveTornState2) {
  RunTornReadScenario(2);
}
TEST(MvccParallelTest, ReadersNeverObserveTornState4) {
  RunTornReadScenario(4);
}
TEST(MvccParallelTest, ReadersNeverObserveTornState8) {
  RunTornReadScenario(8);
}

// Chaos variant: a mid-epoch injected fault rolls the first view's epoch
// back; concurrent readers must only ever see that view's pre-epoch
// version, while the second view (whose epoch committed) advances.
TEST(MvccParallelTest, FaultedEpochInvisibleToReaders) {
  Database db;
  LoadRunningExample(&db);
  ViewManager vm(&db);
  const PlanPtr spj = RunningExampleSpjPlan(db);
  const PlanPtr agg = RunningExampleAggPlan(db);
  vm.DefineView("vspj", spj);
  vm.DefineView("vagg", agg);
  vm.EnableSnapshotReads();

  const Snapshot pre = vm.OpenSnapshot();
  const std::string spj_pre = Fingerprint(pre.Read("vspj").Scan());
  const uint64_t spj_epoch_pre = pre.Read("vspj").epoch();

  ASSERT_TRUE(vm.Update("parts", {Value("P2")}, {"price"}, {Value(77.0)}));

  std::atomic<bool> done{false};
  std::vector<std::vector<Observed>> seen(2);
  std::vector<std::thread> pool;
  for (int r = 0; r < 2; ++r) {
    pool.emplace_back([&, r] {
      size_t iter = 0;
      while (!done.load(std::memory_order_acquire) || iter < 32) {
        const Snapshot snap = vm.OpenSnapshot();
        seen[r].push_back({"vspj", snap.Read("vspj").epoch(),
                           Fingerprint(snap.Read("vspj").Scan())});
        ++iter;
      }
    });
  }

  // Site 0 is the first site the refresh visits — inside vspj's epoch
  // (views maintain sequentially in definition order with threads=1).
  FaultPlan plan;
  plan.fire_at_site = 0;
  plan.max_fires = 1;
  FaultInjector injector(plan);
  RefreshOptions options;
  options.degrade = DegradePolicy::kFailFast;
  options.fault = &injector;
  RefreshReport report;
  const Status status = vm.TryRefresh(options, &report);
  done.store(true, std::memory_order_release);
  for (std::thread& t : pool) t.join();

  ASSERT_FALSE(status.ok());
  ASSERT_EQ(report.incidents.size(), 1u);
  EXPECT_EQ(report.incidents[0].view, "vspj");

  // The failed view's epoch never published: the new snapshot still serves
  // the pre-epoch version, and every concurrent observation was that exact
  // version.
  const Snapshot post = vm.OpenSnapshot();
  EXPECT_EQ(post.Read("vspj").epoch(), spj_epoch_pre);
  EXPECT_EQ(Fingerprint(post.Read("vspj").Scan()), spj_pre);
  for (const auto& per_reader : seen) {
    for (const Observed& obs : per_reader) {
      EXPECT_EQ(obs.epoch, spj_epoch_pre);
      EXPECT_EQ(obs.fingerprint, spj_pre);
    }
  }
  // The committed view advanced and matches recompute against the current
  // base tables (the base change stayed applied).
  EXPECT_TRUE(post.Read("vagg").Scan().BagEquals(Recompute(&db, agg)));
  ExpectViewMatchesRecompute(&db, agg, "vagg");
}

// Batched undo × MVCC: a fault at an "apply-flush:<table>" site fires
// *after* that APPLY's whole before-image batch reached the epoch undo.
// The rolled-back epoch must stay invisible to snapshot readers — a fresh
// snapshot still serves the exact pre-refresh version — and RepairView
// publishes a healed version.
TEST(MvccTest, FaultedEpochAfterUndoFlushInvisibleToSnapshots) {
  const auto seed_changes = [](ViewManager* vm) {
    ASSERT_TRUE(vm->Update("parts", {Value("P1")}, {"price"},
                           {Value(11.0)}));
    ASSERT_TRUE(vm->Insert("parts", {Value("P5"), Value(50.0)}));
    ASSERT_TRUE(vm->Insert("devices_parts", {Value("D1"), Value("P5")}));
  };

  // Probe the fault surface of one clean refresh.
  uint64_t total_sites = 0;
  {
    Database db;
    LoadRunningExample(&db);
    ViewManager vm(&db);
    vm.DefineView("v", RunningExampleAggPlan(db));
    vm.EnableSnapshotReads();
    seed_changes(&vm);
    FaultInjector probe;
    RefreshOptions options;
    options.fault = &probe;
    RefreshReport report;
    ASSERT_TRUE(vm.TryRefresh(options, &report).ok());
    total_sites = probe.sites_visited();
  }
  ASSERT_GT(total_sites, 0u);

  int flush_sites = 0;
  for (uint64_t site = 0; site < total_sites; ++site) {
    Database db;
    LoadRunningExample(&db);
    ViewManager vm(&db);
    const PlanPtr plan = RunningExampleAggPlan(db);
    vm.DefineView("v", plan);
    vm.EnableSnapshotReads();
    const Snapshot pre = vm.OpenSnapshot();
    const uint64_t epoch_pre = pre.Read("v").epoch();
    const std::string bytes_pre = Fingerprint(pre.Read("v").Scan());
    seed_changes(&vm);

    FaultPlan fplan;
    fplan.fire_at_site = site;
    fplan.max_fires = 1;
    FaultInjector injector(fplan);
    RefreshOptions options;
    options.degrade = DegradePolicy::kFailFast;
    options.fault = &injector;
    RefreshReport report;
    const Status status = vm.TryRefresh(options, &report);
    ASSERT_FALSE(status.ok()) << "site " << site;
    if (status.ToString().find("apply-flush:") == std::string::npos) {
      continue;
    }
    ++flush_sites;
    const std::string context = "flush site " + std::to_string(site);
    // The batch reached the epoch undo before the fault; the rolled-back
    // epoch never published, so a fresh snapshot still serves the exact
    // pre-refresh version.
    const Snapshot post = vm.OpenSnapshot();
    EXPECT_EQ(post.Read("v").epoch(), epoch_pre) << context;
    EXPECT_EQ(Fingerprint(post.Read("v").Scan()), bytes_pre) << context;
    // Repair recomputes and republishes: the next snapshot serves it.
    vm.RepairView("v");
    ExpectViewMatchesRecompute(&db, plan, "v", context);
    const Snapshot healed = vm.OpenSnapshot();
    EXPECT_TRUE(healed.Read("v").Scan().BagEquals(Recompute(&db, plan)))
        << context;
  }
  EXPECT_GT(flush_sites, 0);
}

}  // namespace
}  // namespace idivm
