// Crash-recovery fault sweep (the durability acceptance test): builds a
// 1000-modification BSMA WAL behind a snapshot, then injects a crash at
// EVERY record boundary — plus torn-tail and bit-flip variants — and checks
// that recovery lands exactly on the last valid COMMIT with every recovered
// view identical to a from-scratch recompute over the recovered base tables.

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/check.h"
#include "src/common/str_util.h"
#include "src/core/view_manager.h"
#include "src/persist/fault.h"
#include "src/persist/recovery.h"
#include "src/persist/snapshot.h"
#include "src/persist/wal.h"
#include "src/workload/bsma.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

using persist::FaultFile;
using persist::ReadWal;
using persist::Recover;
using persist::RecoverResult;
using persist::WalOptions;
using persist::WalReadResult;
using persist::WalRecord;
using persist::WalRecordType;
using persist::WalSyncPolicy;
using persist::WalWriter;
using persist::WriteSnapshot;

constexpr uint64_t kWalHeaderBytes = 8;  // magic + version
constexpr int kModifications = 1000;
constexpr int kCommitEvery = 50;

// The golden pre-crash run, built once for the whole suite: a scaled-down
// BSMA instance with two views (a join chain and an aggregate), snapshotted
// at LSN 0, then 1000 user-update modifications journaled in 20
// COMMIT-delimited refresh batches.
struct Golden {
  std::string snapshot_path;
  std::string wal_path;
  std::vector<std::string> views;
  WalReadResult wal;  // pristine read: records + end offsets
};

const Golden& GoldenRun() {
  static const Golden* golden = [] {
    auto* g = new Golden;
    g->snapshot_path = ::testing::TempDir() + "idivm_fault_golden.snap";
    g->wal_path = ::testing::TempDir() + "idivm_fault_golden.wal";
    g->views = {"q7", "qs1"};

    Database db;
    BsmaConfig config;
    config.users = 50;
    config.friends_per_user = 5;
    BsmaWorkload workload(&db, config);
    ViewManager manager(&db);
    for (const std::string& view : g->views) {
      manager.DefineView(view, workload.ViewPlan(view));
    }
    auto wal = WalWriter::Open(g->wal_path,
                               WalOptions{.sync = WalSyncPolicy::kNone});
    IDIVM_CHECK(wal != nullptr);
    IDIVM_CHECK(WriteSnapshot(db, manager.SerializeRepository(), 0,
                              g->snapshot_path)
                    .empty());
    manager.set_journal(wal.get());
    for (int done = 0; done < kModifications; done += kCommitEvery) {
      workload.ApplyUserUpdates(&manager.logger(), kCommitEvery);
      manager.Refresh();
    }
    wal->Flush();
    wal.reset();

    g->wal = ReadWal(g->wal_path);
    IDIVM_CHECK(g->wal.ok, g->wal.error);
    IDIVM_CHECK(!g->wal.truncated);
    IDIVM_CHECK(static_cast<int>(g->wal.records.size()) ==
                kModifications + kModifications / kCommitEvery);
    return g;
  }();
  return *golden;
}

// What recovery must reconstruct for a WAL cut to `prefix_bytes`: the LSN of
// the last COMMIT wholly inside the prefix, and how many valid modification
// records follow it (they must be discarded).
struct ExpectedAtCut {
  uint64_t commit_lsn = 0;
  uint64_t discarded = 0;
};

ExpectedAtCut ExpectationFor(const Golden& g, uint64_t prefix_bytes) {
  ExpectedAtCut expected;
  for (size_t i = 0; i < g.wal.records.size(); ++i) {
    if (g.wal.record_end_offsets[i] > prefix_bytes) break;
    if (g.wal.records[i].type == WalRecordType::kCommit) {
      expected.commit_lsn = g.wal.records[i].lsn;
      expected.discarded = 0;
    } else {
      ++expected.discarded;
    }
  }
  return expected;
}

// Recovers from the golden snapshot plus `wal_path`, then asserts the
// recovered state is exactly the last valid COMMIT: LSN bookkeeping matches
// `expected`, and every view equals recomputing its plan from the recovered
// base tables.
void ExpectRecoversTo(const std::string& wal_path,
                      const ExpectedAtCut& expected,
                      const std::string& context) {
  const Golden& g = GoldenRun();
  Database db;
  ViewManager manager(&db);
  const RecoverResult result =
      Recover(&db, &manager, g.snapshot_path, wal_path);
  ASSERT_TRUE(result.ok) << context << ": " << result.error;
  EXPECT_EQ(result.last_applied_lsn,
            expected.commit_lsn == 0 ? result.snapshot_lsn
                                     : expected.commit_lsn)
      << context;
  EXPECT_EQ(result.records_discarded, expected.discarded) << context;
  for (const std::string& view : g.views) {
    ASSERT_TRUE(manager.HasView(view)) << context;
    testing::ExpectViewMatchesRecompute(
        &db, manager.GetView(view).view().plan, view, context);
  }
}

TEST(RecoveryFaultTest, CrashAtEveryRecordBoundary) {
  const Golden& g = GoldenRun();
  FaultFile fault(g.wal_path,
                  ::testing::TempDir() + "idivm_fault_boundary.wal");
  // Boundary 0 is "crashed before any record made it out" (header only);
  // boundary i > 0 is "crashed right after record i-1 hit the disk".
  for (size_t i = 0; i <= g.wal.records.size(); ++i) {
    const uint64_t cut =
        (i == 0) ? kWalHeaderBytes : g.wal.record_end_offsets[i - 1];
    SCOPED_TRACE(StrCat("boundary ", i, " (", cut, " bytes)"));
    ExpectRecoversTo(fault.TruncatedAt(cut), ExpectationFor(g, cut),
                     StrCat("crash after record ", i));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(RecoveryFaultTest, TornRecordInTail) {
  const Golden& g = GoldenRun();
  FaultFile fault(g.wal_path, ::testing::TempDir() + "idivm_fault_torn.wal");
  // Cut mid-record — a few bytes past a sample of boundaries — so the final
  // record is torn. Recovery must truncate it away and land on the last
  // COMMIT before the tear.
  for (size_t i = 0; i < g.wal.records.size(); i += 111) {
    const uint64_t boundary = g.wal.record_end_offsets[i];
    if (boundary + 3 >= g.wal.valid_bytes) break;
    for (const uint64_t delta : {uint64_t{1}, uint64_t{3}, uint64_t{9}}) {
      const uint64_t cut = boundary + delta;
      SCOPED_TRACE(StrCat("tear at ", cut));
      const std::string& path = fault.TruncatedAt(cut);
      const WalReadResult read = ReadWal(path);
      ASSERT_TRUE(read.ok) << read.error;
      EXPECT_TRUE(read.truncated);
      EXPECT_EQ(read.valid_bytes, boundary);
      ExpectRecoversTo(path, ExpectationFor(g, boundary),
                       StrCat("tear at byte ", cut));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(RecoveryFaultTest, BitFlipInBody) {
  const Golden& g = GoldenRun();
  FaultFile fault(g.wal_path, ::testing::TempDir() + "idivm_fault_flip.wal");
  // Flip one bit at several depths of the file. Everything from the damaged
  // record on is untrusted; recovery must stop at the last COMMIT before it.
  for (const double depth : {0.1, 0.33, 0.5, 0.75, 0.97}) {
    const auto offset =
        static_cast<uint64_t>(depth * static_cast<double>(g.wal.valid_bytes));
    ASSERT_GT(offset, kWalHeaderBytes);
    // The record containing `offset` is the first whose end lies past it.
    uint64_t record_start = kWalHeaderBytes;
    for (size_t i = 0; i < g.wal.records.size(); ++i) {
      if (g.wal.record_end_offsets[i] > offset) break;
      record_start = g.wal.record_end_offsets[i];
    }
    SCOPED_TRACE(StrCat("bit flip at ", offset));
    const std::string& path = fault.WithBitFlip(offset, 6);
    const WalReadResult read = ReadWal(path);
    ASSERT_TRUE(read.ok) << read.error;
    EXPECT_TRUE(read.truncated);
    EXPECT_LE(read.valid_bytes, record_start);
    ExpectRecoversTo(path, ExpectationFor(g, read.valid_bytes),
                     StrCat("bit flip at byte ", offset));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(RecoveryFaultTest, CorruptSnapshotFailsGracefully) {
  const Golden& g = GoldenRun();
  FaultFile fault(g.snapshot_path,
                  ::testing::TempDir() + "idivm_fault_snap.snap");
  Database db;
  ViewManager manager(&db);
  const RecoverResult result =
      Recover(&db, &manager,
              fault.WithBitFlip(fault.source_size() / 2, 2), g.wal_path);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST(RecoveryFaultTest, PristineWalRecoversFullState) {
  const Golden& g = GoldenRun();
  const ExpectedAtCut expected = ExpectationFor(g, g.wal.valid_bytes);
  EXPECT_EQ(expected.discarded, 0u);
  ExpectRecoversTo(g.wal_path, expected, "pristine");
}

}  // namespace
}  // namespace idivm
