// Engine parity: the compiled ∆-script engine (src/exec) must be
// byte-identical to the interpreter on every observable surface — table
// contents, AccessStats, MaintainResult phases, error messages, fault-site
// enumeration and rollback behaviour — at every thread count, on every
// workload shape: the running example, the script_io fuzz corpus view, and
// all eight BSMA views. Any divergence is a compiler or VM bug, never an
// acceptable "optimization".

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/compose.h"
#include "src/core/maintainer.h"
#include "src/core/modification_log.h"
#include "src/core/script_io.h"
#include "src/core/view_manager.h"
#include "src/obs/metrics.h"
#include "src/robust/fault_injection.h"
#include "src/robust/status.h"
#include "src/workload/bsma.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

std::map<std::string, std::string> SnapshotAll(Database* db) {
  std::map<std::string, std::string> out;
  for (const std::string& name : db->TableNames()) {
    out[name] = db->GetTable(name).SnapshotUncounted().Sorted().ToString();
  }
  return out;
}

std::string JoinSnapshots(const std::map<std::string, std::string>& tables) {
  std::string out;
  for (const auto& [name, contents] : tables) {
    out += "== " + name + " ==\n" + contents;
  }
  return out;
}

// The chaos-test change batch: touches all three running-example base
// tables so both the SPJ chain and the γ step run.
std::map<std::string, std::vector<Modification>> MakeNetChanges(
    Database* db) {
  ModificationLogger logger(db);
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"},
                            {Value(11.0)}));
  EXPECT_TRUE(logger.Insert("parts", {Value("P5"), Value(50.0)}));
  EXPECT_TRUE(logger.Insert("devices_parts", {Value("D1"), Value("P5")}));
  EXPECT_TRUE(logger.Delete("devices_parts", {Value("D2"), Value("P1")}));
  EXPECT_TRUE(logger.Update("devices", {Value("D3")}, {"category"},
                            {Value("phone")}));
  return logger.NetChanges();
}

// Counter values parsed out of the global registry's text export; used to
// compare per-epoch counter *deltas* between engines. Labelled counter
// names contain spaces, so the value is the last space-separated token.
std::map<std::string, int64_t> CounterSnapshot() {
  std::map<std::string, int64_t> out;
  const std::string text = obs::MetricsRegistry::Global().ExportText();
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("counter ", 0) != 0) continue;
    const size_t split = line.rfind(' ');
    out[line.substr(8, split - 8)] = std::stoll(line.substr(split + 1));
  }
  return out;
}

// Engine-specific metrics legitimately differ between the two runs; every
// other counter (epochs, rollbacks, APPLY volume, per-rule accesses) must
// move by exactly the same amount.
bool IsEngineSpecificCounter(const std::string& name) {
  return name.find("program_cache") != std::string::npos ||
         name.find("fused_steps") != std::string::npos ||
         name.find("agg_kernel") != std::string::npos;
}

std::map<std::string, int64_t> CounterDelta(
    const std::map<std::string, int64_t>& before,
    const std::map<std::string, int64_t>& after) {
  std::map<std::string, int64_t> delta;
  for (const auto& [name, value] : after) {
    if (IsEngineSpecificCounter(name)) continue;
    const auto it = before.find(name);
    const int64_t prior = it != before.end() ? it->second : 0;
    if (value != prior) delta[name] = value - prior;
  }
  return delta;
}

// Everything observable from one maintenance epoch of the running example.
struct EpochOutcome {
  std::string status;           // Status::ToString()
  std::string tables;           // all tables, sorted, concatenated
  std::string stats;            // AccessStats::ToString()
  std::string result;           // MaintainResult::ToString() (empty on error)
  uint64_t sites_visited = 0;   // fault surface size
  int faults_fired = 0;
  std::map<std::string, int64_t> counters;  // engine-agnostic deltas
};

EpochOutcome RunEpoch(const std::string& shape, ExecEngine engine,
                      int threads,
                      std::optional<uint64_t> fire_at_site = std::nullopt,
                      int64_t max_epoch_ops = 0) {
  Database db;
  testing::LoadRunningExample(&db);
  const PlanPtr plan = shape == "agg" ? testing::RunningExampleAggPlan(db)
                                      : testing::RunningExampleSpjPlan(db);
  Maintainer m(&db, CompileView("v", plan, db));
  const auto net = MakeNetChanges(&db);

  FaultPlan fplan;
  if (fire_at_site.has_value()) fplan.fire_at_site = *fire_at_site;
  FaultInjector injector(fplan);

  MaintainOptions options;
  options.engine = engine;
  options.threads = threads;
  options.fault = &injector;
  options.max_epoch_ops = max_epoch_ops;

  const auto before = CounterSnapshot();
  EpochOutcome out;
  MaintainResult result;
  const Status status = m.TryMaintain(net, options, &result);
  out.status = status.ToString();
  out.tables = JoinSnapshots(SnapshotAll(&db));
  out.stats = db.stats().ToString();
  if (status.ok()) out.result = result.ToString();
  out.sites_visited = injector.sites_visited();
  out.faults_fired = injector.faults_fired();
  out.counters = CounterDelta(before, CounterSnapshot());
  return out;
}

void ExpectOutcomesEqual(const EpochOutcome& interpret,
                         const EpochOutcome& compiled,
                         const std::string& context) {
  EXPECT_EQ(compiled.status, interpret.status) << context;
  EXPECT_EQ(compiled.tables, interpret.tables) << context;
  EXPECT_EQ(compiled.stats, interpret.stats) << context;
  EXPECT_EQ(compiled.result, interpret.result) << context;
  EXPECT_EQ(compiled.faults_fired, interpret.faults_fired) << context;
  EXPECT_EQ(compiled.counters, interpret.counters) << context;
}

class ExecParityShapeTest : public ::testing::TestWithParam<const char*> {};

// Clean epochs at 1/2/4/8 script threads: the compiled engine (at any
// thread count) must match the sequential interpreter bit for bit.
TEST_P(ExecParityShapeTest, CleanEpochMatchesAtEveryThreadCount) {
  const std::string shape = GetParam();
  const EpochOutcome reference =
      RunEpoch(shape, ExecEngine::kInterpret, /*threads=*/1);
  ASSERT_EQ(reference.status, OkStatus().ToString());
  for (const int threads : {1, 2, 4, 8}) {
    const EpochOutcome compiled =
        RunEpoch(shape, ExecEngine::kCompiled, threads);
    ExpectOutcomesEqual(reference, compiled,
                        shape + " threads=" + std::to_string(threads));
    // The interpreter is thread-count invariant too; pin that while here.
    const EpochOutcome interpret =
        RunEpoch(shape, ExecEngine::kInterpret, threads);
    ExpectOutcomesEqual(reference, interpret,
                        shape + " interpret threads=" +
                            std::to_string(threads));
  }
}

// Both engines expose the identical fault surface, and an injected fault
// at *every* site fails with the identical error, fires exactly once, and
// rolls every table back to the identical pre-epoch bytes.
TEST_P(ExecParityShapeTest, EveryFaultSiteDivergesNowhere) {
  const std::string shape = GetParam();
  const EpochOutcome probe_i =
      RunEpoch(shape, ExecEngine::kInterpret, /*threads=*/1);
  const EpochOutcome probe_c =
      RunEpoch(shape, ExecEngine::kCompiled, /*threads=*/1);
  ASSERT_EQ(probe_c.sites_visited, probe_i.sites_visited) << shape;
  ASSERT_GT(probe_i.sites_visited, 0u) << shape;

  for (uint64_t site = 0; site < probe_i.sites_visited; ++site) {
    const std::string context = shape + " site " + std::to_string(site);
    const EpochOutcome interpret =
        RunEpoch(shape, ExecEngine::kInterpret, /*threads=*/1, site);
    const EpochOutcome compiled =
        RunEpoch(shape, ExecEngine::kCompiled, /*threads=*/1, site);
    EXPECT_NE(interpret.status, OkStatus().ToString()) << context;
    ExpectOutcomesEqual(interpret, compiled, context);
  }
}

// Batched undo capture: the per-APPLY flush boundary ("apply-flush:<t>")
// is a real fault site in both engines. A fault fired there lands *after*
// the APPLY's whole before-image batch reached the epoch undo, so the
// faulted run must still show the contract-v5 batch counters — and roll
// back from those batched entries identically in both engines (the
// byte-identity against pre-epoch state is pinned by chaos_maintain_test's
// all-site sweep; parity here transfers it to the compiled engine).
TEST_P(ExecParityShapeTest, ApplyFlushFaultRollsBackBatchedUndo) {
  const std::string shape = GetParam();
  const EpochOutcome probe =
      RunEpoch(shape, ExecEngine::kInterpret, /*threads=*/1);
  ASSERT_EQ(probe.status, OkStatus().ToString());
  // A clean epoch records whole-APPLY undo batches.
  ASSERT_GT(probe.counters.count("idivm_undo_batches_total"), 0u) << shape;
  ASSERT_GT(probe.counters.at("idivm_undo_batches_total"), 0) << shape;

  int flush_sites = 0;
  int flush_sites_with_batches = 0;
  for (uint64_t site = 0; site < probe.sites_visited; ++site) {
    const EpochOutcome interpret =
        RunEpoch(shape, ExecEngine::kInterpret, /*threads=*/1, site);
    if (interpret.status.find("apply-flush:") == std::string::npos) continue;
    ++flush_sites;
    const std::string context = shape + " flush site " + std::to_string(site);
    const EpochOutcome compiled =
        RunEpoch(shape, ExecEngine::kCompiled, /*threads=*/1, site);
    ExpectOutcomesEqual(interpret, compiled, context);
    // The batch flushed before the site fired: a faulted epoch whose
    // applies modified anything recorded batched before-images, then
    // rolled them back. (An APPLY of a no-op diff flushes an empty batch,
    // which is counterless by design — so assert over the whole sweep.)
    const auto batches = interpret.counters.find("idivm_undo_batches_total");
    if (batches != interpret.counters.end() && batches->second > 0) {
      ++flush_sites_with_batches;
    }
  }
  EXPECT_GT(flush_sites, 0) << shape;
  EXPECT_GT(flush_sites_with_batches, 0) << shape;
}

// The specialized γ kernel engages on the compiled agg shape and never on
// the interpreter; the eligible running-example γ step must always hit,
// never fall back to the generic Contribute loop.
TEST(ExecParityTest, CompiledAggEngagesKernel) {
  const auto counter = [](const char* name) {
    return obs::MetricsRegistry::Global().CounterValue(name);
  };
  const int64_t hits0 = counter("idivm_agg_kernel_hits_total");
  const int64_t misses0 = counter("idivm_agg_kernel_misses_total");
  const EpochOutcome interpret =
      RunEpoch("agg", ExecEngine::kInterpret, /*threads=*/1);
  ASSERT_EQ(interpret.status, OkStatus().ToString());
  EXPECT_EQ(counter("idivm_agg_kernel_hits_total"), hits0);
  EXPECT_EQ(counter("idivm_agg_kernel_misses_total"), misses0);
  const EpochOutcome compiled =
      RunEpoch("agg", ExecEngine::kCompiled, /*threads=*/1);
  ASSERT_EQ(compiled.status, OkStatus().ToString());
  EXPECT_GT(counter("idivm_agg_kernel_hits_total"), hits0);
  EXPECT_EQ(counter("idivm_agg_kernel_misses_total"), misses0);
}

// The epoch op budget trips at the same point with the same message, and
// the rollback is identical.
TEST_P(ExecParityShapeTest, OpBudgetTripsIdentically) {
  const std::string shape = GetParam();
  for (const int64_t budget : {1, 3}) {
    const EpochOutcome interpret =
        RunEpoch(shape, ExecEngine::kInterpret, /*threads=*/1, std::nullopt,
                 budget);
    const EpochOutcome compiled =
        RunEpoch(shape, ExecEngine::kCompiled, /*threads=*/1, std::nullopt,
                 budget);
    EXPECT_NE(interpret.status, OkStatus().ToString()) << shape;
    ExpectOutcomesEqual(interpret, compiled,
                        shape + " budget=" + std::to_string(budget));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ExecParityShapeTest,
                         ::testing::Values("spj", "agg"));

// ---- BSMA workloads (all eight Fig. 9b views) ---------------------------

BsmaConfig SmallConfig() {
  BsmaConfig config;
  config.users = 60;
  config.friends_per_user = 4;
  config.num_cities = 5;
  config.num_topics = 8;
  return config;
}

struct BsmaOutcome {
  std::string tables;
  std::string stats;
  std::string result;
};

BsmaOutcome RunBsma(const std::string& view, ExecEngine engine,
                    int threads) {
  Database db;
  BsmaWorkload workload(&db, SmallConfig());
  Maintainer m(&db, CompileView("v", workload.ViewPlan(view), db));
  ModificationLogger logger(&db);
  workload.ApplyUserUpdates(&logger, 40);

  MaintainOptions options;
  options.engine = engine;
  options.threads = threads;
  MaintainResult result;
  const Status status = m.TryMaintain(logger.NetChanges(), options, &result);
  EXPECT_TRUE(status.ok()) << view << ": " << status.ToString();
  testing::ExpectViewMatchesRecompute(&db, m.view().plan, "v",
                                      view + " engine parity run");
  BsmaOutcome out;
  out.tables = JoinSnapshots(SnapshotAll(&db));
  out.stats = db.stats().ToString();
  out.result = result.ToString();
  return out;
}

class ExecParityBsmaTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ExecParityBsmaTest, CompiledMatchesInterpreter) {
  const std::string view = GetParam();
  const BsmaOutcome reference =
      RunBsma(view, ExecEngine::kInterpret, /*threads=*/1);
  for (const int threads : {1, 2, 4, 8}) {
    const BsmaOutcome compiled =
        RunBsma(view, ExecEngine::kCompiled, threads);
    const std::string context = view + " threads=" + std::to_string(threads);
    EXPECT_EQ(compiled.tables, reference.tables) << context;
    EXPECT_EQ(compiled.stats, reference.stats) << context;
    EXPECT_EQ(compiled.result, reference.result) << context;
  }
}

INSTANTIATE_TEST_SUITE_P(AllViews, ExecParityBsmaTest,
                         ::testing::ValuesIn(BsmaWorkload::ViewNames()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

// ---- The script_io fuzz corpus view, loaded then executed ---------------

// Programs compiled from a *loaded* repository view (the fuzz corpus
// serialization round trip) behave identically too: loading must not
// produce a script that compiles differently from the one it serialized.
TEST(ExecParityTest, LoadedCorpusViewMatches) {
  auto run = [](ExecEngine engine) {
    Database db;
    BsmaWorkload workload(&db, SmallConfig());
    const CompiledView compiled =
        CompileView("v", workload.ViewPlan("qs1"), db);
    const std::string corpus = SerializeCompiledView(compiled);
    const LoadResult loaded = LoadCompiledView(corpus, db);
    EXPECT_TRUE(loaded.ok) << loaded.error;
    Maintainer m(&db, loaded.view);
    ModificationLogger logger(&db);
    workload.ApplyUserUpdates(&logger, 40);
    MaintainOptions options;
    options.engine = engine;
    MaintainResult result;
    const Status status =
        m.TryMaintain(logger.NetChanges(), options, &result);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return JoinSnapshots(SnapshotAll(&db)) + db.stats().ToString() +
           result.ToString();
  };
  EXPECT_EQ(run(ExecEngine::kCompiled), run(ExecEngine::kInterpret));
}

// ---- ViewManager: ladder, MVCC hand-off, program cache ------------------

// Fault storms through the full degradation ladder: identical incidents
// (view, rung, recovered), identical quarantine set, identical final
// tables — for every seed — then identical recovery.
TEST(ExecParityTest, LadderStormsMatch) {
  auto run = [](ExecEngine engine, int seed) {
    Database db;
    testing::LoadRunningExample(&db);
    ViewManager vm(&db);
    vm.DefineView("v_spj", testing::RunningExampleSpjPlan(db));
    vm.DefineView("v_agg", testing::RunningExampleAggPlan(db));
    EXPECT_TRUE(vm.Update("parts", {Value("P1")}, {"price"},
                          {Value(10.0 + seed)}));
    EXPECT_TRUE(vm.Insert("parts", {Value("P7"), Value(70.0)}));
    EXPECT_TRUE(vm.Insert("devices_parts", {Value("D1"), Value("P7")}));

    FaultPlan plan;
    plan.rate = 0.3;
    plan.seed = static_cast<uint64_t>(seed);
    plan.max_fires = (seed % 4);
    FaultInjector injector(plan);
    RefreshOptions options;
    options.engine = engine;
    options.fault = &injector;
    RefreshReport report;
    EXPECT_TRUE(vm.TryRefresh(options, &report).ok());

    std::string out;
    for (const ViewIncident& incident : report.incidents) {
      out += incident.view + " rung " + std::to_string(incident.rung) +
             (incident.recovered ? " recovered" : " lost") + "\n";
    }
    for (const std::string& name : vm.QuarantinedViews()) {
      out += "quarantined " + name + "\n";
      vm.RepairView(name);
    }
    for (const std::string name : {"v_spj", "v_agg"}) {
      testing::ExpectViewMatchesRecompute(
          &db, vm.GetView(name).view().plan, name,
          "storm seed " + std::to_string(seed));
    }
    return out + JoinSnapshots(SnapshotAll(&db));
  };
  for (int seed = 0; seed < 12; ++seed) {
    EXPECT_EQ(run(ExecEngine::kCompiled, seed),
              run(ExecEngine::kInterpret, seed))
        << "seed " << seed;
  }
}

// Compiled refreshes in snapshot-read mode hand the identical redo delta
// to MVCC: the published snapshot equals the live tables after the flip.
TEST(ExecParityTest, MvccRedoHandOffMatches) {
  auto run = [](ExecEngine engine) {
    Database db;
    testing::LoadRunningExample(&db);
    ViewManager vm(&db);
    vm.EnableSnapshotReads();
    vm.DefineView("v_spj", testing::RunningExampleSpjPlan(db));
    vm.DefineView("v_agg", testing::RunningExampleAggPlan(db));
    EXPECT_TRUE(vm.Update("parts", {Value("P1")}, {"price"},
                          {Value(11.0)}));
    EXPECT_TRUE(vm.Insert("parts", {Value("P5"), Value(50.0)}));
    EXPECT_TRUE(vm.Insert("devices_parts", {Value("D1"), Value("P5")}));
    RefreshOptions options;
    options.engine = engine;
    RefreshReport report;
    EXPECT_TRUE(vm.TryRefresh(options, &report).ok());
    const mvcc::Snapshot snapshot = vm.OpenSnapshot();
    std::string out;
    for (const std::string name : {"v_spj", "v_agg"}) {
      const Relation live = db.GetTable(name).SnapshotUncounted();
      const Relation versioned = snapshot.Read(name).Scan();
      EXPECT_TRUE(versioned.BagEquals(live)) << name;
      out += versioned.Sorted().ToString();
    }
    return out;
  };
  EXPECT_EQ(run(ExecEngine::kCompiled), run(ExecEngine::kInterpret));
}

// The manager's program cache: second refresh hits, catalog changes
// invalidate, and the interpreter never touches it.
TEST(ExecParityTest, ProgramCacheHitsAndInvalidation) {
  Database db;
  testing::LoadRunningExample(&db);
  ViewManager vm(&db);
  vm.DefineView("v_spj", testing::RunningExampleSpjPlan(db));

  const auto counter = [](const char* name) {
    return obs::MetricsRegistry::Global().CounterValue(name);
  };
  const int64_t hits0 = counter("idivm_program_cache_hits_total");
  const int64_t misses0 = counter("idivm_program_cache_misses_total");

  RefreshOptions options;
  options.engine = ExecEngine::kCompiled;
  RefreshReport report;
  EXPECT_TRUE(vm.Update("parts", {Value("P1")}, {"price"}, {Value(12.0)}));
  ASSERT_TRUE(vm.TryRefresh(options, &report).ok());
  EXPECT_EQ(counter("idivm_program_cache_misses_total"), misses0 + 1);
  EXPECT_EQ(counter("idivm_program_cache_hits_total"), hits0);

  EXPECT_TRUE(vm.Update("parts", {Value("P1")}, {"price"}, {Value(13.0)}));
  ASSERT_TRUE(vm.TryRefresh(options, &report).ok());
  EXPECT_EQ(counter("idivm_program_cache_misses_total"), misses0 + 1);
  EXPECT_EQ(counter("idivm_program_cache_hits_total"), hits0 + 1);

  // DefineView invalidates: the next compiled refresh recompiles both.
  vm.DefineView("v_agg", testing::RunningExampleAggPlan(db));
  EXPECT_TRUE(vm.Update("parts", {Value("P1")}, {"price"}, {Value(14.0)}));
  ASSERT_TRUE(vm.TryRefresh(options, &report).ok());
  EXPECT_EQ(counter("idivm_program_cache_misses_total"), misses0 + 3);
  EXPECT_EQ(counter("idivm_program_cache_hits_total"), hits0 + 1);

  // The interpreting engine neither hits nor misses.
  EXPECT_TRUE(vm.Update("parts", {Value("P1")}, {"price"}, {Value(15.0)}));
  RefreshOptions interpret;
  ASSERT_TRUE(vm.TryRefresh(interpret, &report).ok());
  EXPECT_EQ(counter("idivm_program_cache_misses_total"), misses0 + 3);
  EXPECT_EQ(counter("idivm_program_cache_hits_total"), hits0 + 1);
}

// Compilation fuses diff→apply chains on the running example's SPJ script
// and says so in the contract-v3 counter.
TEST(ExecParityTest, CompilationFusesSteps) {
  const int64_t fused0 = obs::MetricsRegistry::Global().CounterValue(
      "idivm_fused_steps_total");
  const EpochOutcome compiled =
      RunEpoch("spj", ExecEngine::kCompiled, /*threads=*/1);
  ASSERT_EQ(compiled.status, OkStatus().ToString());
  EXPECT_GT(obs::MetricsRegistry::Global().CounterValue(
                "idivm_fused_steps_total"),
            fused0);
}

}  // namespace
}  // namespace idivm
