// Unit tests for the ∆-script executor: phase accounting, cache handling,
// pre-state reconstruction, and the compiled-view plumbing.

#include "gtest/gtest.h"
#include "src/core/compose.h"
#include "src/core/maintainer.h"
#include "src/core/modification_log.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

class MaintainerTest : public ::testing::Test {
 protected:
  MaintainerTest() { testing::LoadRunningExample(&db_); }
  Database db_;
};

TEST_F(MaintainerTest, CompiledViewExposesStructure) {
  const CompiledView view =
      CompileView("vp", testing::RunningExampleAggPlan(db_), db_);
  EXPECT_EQ(view.view_name, "vp");
  EXPECT_EQ(view.view_ids, (std::vector<std::string>{"did"}));
  EXPECT_EQ(view.view_schema.ColumnNames(),
            (std::vector<std::string>{"did", "cost"}));
  EXPECT_FALSE(view.input_bindings.empty());
  EXPECT_EQ(view.cache_tables.size(), 1u);  // intermediate cache below γ
  EXPECT_TRUE(db_.HasTable(view.cache_tables[0]));
  // Cache mirrors the SPJ subview.
  EXPECT_EQ(db_.GetTable(view.cache_tables[0]).size(), 3u);
}

TEST_F(MaintainerTest, PhaseAccounting) {
  Maintainer m(&db_, CompileView("vp", testing::RunningExampleAggPlan(db_),
                                 db_));
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(11.0)}));
  db_.stats().Reset();
  const MaintainResult result = m.Maintain(logger.NetChanges());
  // Update on a non-conditional attribute: zero diff computation (the
  // Fig. 12 stacks), cache update = 1 lookup + 2 writes, view update = 2
  // groups × (lookup + write).
  EXPECT_EQ(result.diff_computation.accesses.TotalAccesses(), 0);
  EXPECT_EQ(result.cache_update.accesses.index_lookups, 1);
  EXPECT_EQ(result.cache_update.accesses.tuple_writes, 2);
  EXPECT_EQ(result.view_update.accesses.index_lookups, 2);
  EXPECT_EQ(result.view_update.accesses.tuple_writes, 2);
  // The sum matches the global counter.
  EXPECT_EQ(result.TotalAccesses().TotalAccesses(),
            db_.stats().TotalAccesses());
}

TEST_F(MaintainerTest, CacheStaysConsistent) {
  Maintainer m(&db_, CompileView("vp", testing::RunningExampleAggPlan(db_),
                                 db_));
  const std::string cache = m.view().cache_tables[0];
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Insert("parts", {Value("P5"), Value(50.0)}));
  EXPECT_TRUE(logger.Insert("devices_parts", {Value("D1"), Value("P5")}));
  EXPECT_TRUE(logger.Delete("devices_parts", {Value("D2"), Value("P1")}));
  m.Maintain(logger.NetChanges());
  // Cache == recomputed SPJ subview.
  EvalContext ctx;
  ctx.db = &db_;
  const Relation expected =
      Evaluate(testing::RunningExampleSpjPlan(db_), ctx);
  EXPECT_TRUE(
      db_.GetTable(cache).SnapshotUncounted().BagEquals(expected));
}

TEST_F(MaintainerTest, EmptyNetChangesCostNothing) {
  Maintainer m(&db_, CompileView("vp", testing::RunningExampleAggPlan(db_),
                                 db_));
  db_.stats().Reset();
  const MaintainResult result = m.Maintain({});
  EXPECT_EQ(result.TotalAccesses().TotalAccesses(), 0);
  EXPECT_EQ(result.rows_touched, 0);
}

TEST_F(MaintainerTest, MaintainTwiceWithoutClearIsIdempotentPerLog) {
  // Maintain consumes net changes; running the same net twice must not
  // corrupt the view because effective diffs converge (update to the same
  // values, inserts guarded, deletes dummies).
  Maintainer m(&db_, CompileView("v", testing::RunningExampleSpjPlan(db_),
                                 db_));
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(11.0)}));
  const auto net = logger.NetChanges();
  m.Maintain(net);
  m.Maintain(net);
  testing::ExpectViewMatchesRecompute(&db_, m.view().plan, "v");
}

TEST_F(MaintainerTest, TwoViewsOverOneDatabase) {
  Maintainer spj(&db_, CompileView("v", testing::RunningExampleSpjPlan(db_),
                                   db_));
  Maintainer agg(&db_, CompileView("vp",
                                   testing::RunningExampleAggPlan(db_),
                                   db_));
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("parts", {Value("P2")}, {"price"}, {Value(25.0)}));
  EXPECT_TRUE(logger.Update("devices", {Value("D1")}, {"category"}, {Value("tablet")}));
  const auto net = logger.NetChanges();
  spj.Maintain(net);
  agg.Maintain(net);
  testing::ExpectViewMatchesRecompute(&db_, spj.view().plan, "v");
  testing::ExpectViewMatchesRecompute(&db_, agg.view().plan, "vp");
}

TEST_F(MaintainerTest, NoCacheOptionSkipsCacheTables) {
  CompilerOptions options;
  options.use_caches = false;
  const CompiledView view =
      CompileView("vp", testing::RunningExampleAggPlan(db_), db_, options);
  EXPECT_TRUE(view.cache_tables.empty());
}

TEST_F(MaintainerTest, ScriptPhasesLabelled) {
  const CompiledView view =
      CompileView("vp", testing::RunningExampleAggPlan(db_), db_);
  bool has_cache_phase = false;
  bool has_view_phase = false;
  for (const ScriptStep& step : view.script.steps) {
    if (step.apply.has_value()) {
      has_cache_phase |= step.apply->phase == MaintPhase::kCacheUpdate;
      has_view_phase |= step.apply->phase == MaintPhase::kViewUpdate;
    }
  }
  EXPECT_TRUE(has_cache_phase);
  EXPECT_TRUE(has_view_phase);
}

}  // namespace
}  // namespace idivm
