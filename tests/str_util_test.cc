// Unit tests for string helpers.

#include "gtest/gtest.h"
#include "src/common/str_util.h"

namespace idivm {
namespace {

TEST(StrUtilTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "-", 2.5), "a1-2.5");
  EXPECT_EQ(StrCat(), "");
  EXPECT_EQ(StrCat("solo"), "solo");
}

TEST(StrUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"one"}, "|"), "one");
}

TEST(StrUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(-12.0), "-12");
  EXPECT_EQ(FormatDouble(2.5), "2.5");
  EXPECT_EQ(FormatDouble(0.0), "0");
}

}  // namespace
}  // namespace idivm
