// Tests for the fluent ViewBuilder: the built plans must be equivalent to
// the hand-assembled ones and maintainable end to end.

#include "gtest/gtest.h"
#include "src/algebra/view_builder.h"
#include "src/core/compose.h"
#include "src/core/maintainer.h"
#include "src/core/modification_log.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

class ViewBuilderTest : public ::testing::Test {
 protected:
  ViewBuilderTest() { testing::LoadRunningExample(&db_); }
  Database db_;
};

TEST_F(ViewBuilderTest, RunningExampleSpj) {
  const PlanPtr built = ViewBuilder(db_)
                            .From("parts")
                            .NaturalJoin("devices_parts")
                            .NaturalJoin("devices")
                            .Where(Eq(Col("category"), Lit(Value("phone"))))
                            .Select({"did", "pid", "price"})
                            .Build();
  // Same result as the hand-built Fig. 1b plan.
  const Relation expected =
      testing::Recompute(&db_, testing::RunningExampleSpjPlan(db_));
  EXPECT_TRUE(testing::Recompute(&db_, built).BagEquals(expected));
}

TEST_F(ViewBuilderTest, AggregateWithShorthands) {
  const PlanPtr built = ViewBuilder(db_)
                            .From("parts")
                            .NaturalJoin("devices_parts")
                            .NaturalJoin("devices")
                            .Where(Eq(Col("category"), Lit(Value("phone"))))
                            .Select({"did", "pid", "price"})
                            .GroupBy({"did"}, {Sum(Col("price"), "cost"),
                                               Count("n"),
                                               Avg(Col("price"), "mean")})
                            .Build();
  const Relation out = testing::Recompute(&db_, built).Sorted();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out.rows()[0][1].AsDouble(), 30.0);  // D1: 10+20
  EXPECT_EQ(out.rows()[0][2].AsInt64(), 2);
  EXPECT_DOUBLE_EQ(out.rows()[0][3].AsDouble(), 15.0);
}

TEST_F(ViewBuilderTest, AliasedSelfJoin) {
  const PlanPtr pairs =
      ViewBuilder(db_)
          .FromAliased("devices_parts", "a")
          .JoinAliased("devices_parts", "b",
                       And(Eq(Col("a_pid"), Col("b_pid")),
                           Lt(Col("a_did"), Col("b_did"))))
          .Build();
  // P1 is in D1 and D2 -> one (D1, D2) pair; P2 in D1 and D3 -> one pair.
  EXPECT_EQ(testing::Recompute(&db_, pairs).size(), 2u);
}

TEST_F(ViewBuilderTest, ExceptMatchingIsAntiSemiJoin) {
  // Parts not contained in any device.
  db_.CreateTable("dp2", db_.GetTable("devices_parts").schema(),
                  {"did", "pid"});
  const PlanPtr orphans =
      ViewBuilder(db_)
          .From("parts")
          .ExceptMatching("devices_parts",
                          Eq(Col("pid"), Col("pid")))  // needs rename
          .Build();
  (void)orphans;  // name collision caught at schema inference:
  EXPECT_DEATH(InferSchema(orphans, db_), "duplicate column");
}

TEST_F(ViewBuilderTest, KeepMatchingIsSemiJoin) {
  db_.CreateTable("dp2",
                  Schema({{"d2", DataType::kString},
                          {"p2", DataType::kString}}),
                  {"d2", "p2"});
  db_.GetTable("dp2").BulkLoadUncounted(Relation(
      db_.GetTable("dp2").schema(), {{Value("D1"), Value("P2")}}));
  const PlanPtr used = ViewBuilder(db_)
                           .From("parts")
                           .KeepMatching("dp2", Eq(Col("pid"), Col("p2")))
                           .Build();
  const Relation out = testing::Recompute(&db_, used);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.rows()[0][0].AsString(), "P2");
}

TEST_F(ViewBuilderTest, BuiltViewIsMaintainable) {
  const PlanPtr plan = ViewBuilder(db_)
                           .From("parts")
                           .NaturalJoin("devices_parts")
                           .GroupBy({"did"}, {Sum(Col("price"), "cost")})
                           .Build();
  Maintainer m(&db_, CompileView("v", plan, db_));
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(99.0)}));
  m.Maintain(logger.NetChanges());
  testing::ExpectViewMatchesRecompute(&db_, m.view().plan, "v");
}

TEST_F(ViewBuilderTest, UnionAllWith) {
  const PlanPtr cheap = ViewBuilder(db_)
                            .From("parts")
                            .Where(Lt(Col("price"), Lit(Value(15.0))))
                            .Build();
  const PlanPtr plan = ViewBuilder(db_)
                           .From("parts")
                           .Where(Ge(Col("price"), Lit(Value(15.0))))
                           .UnionAllWith(cheap, "b")
                           .Build();
  EXPECT_EQ(testing::Recompute(&db_, plan).size(), 3u);  // all parts
}

TEST_F(ViewBuilderTest, MisuseAborts) {
  EXPECT_DEATH(ViewBuilder(db_).NaturalJoin("parts"), "call From");
  EXPECT_DEATH(ViewBuilder(db_).Build(), "empty builder");
  EXPECT_DEATH(ViewBuilder(db_).From("parts").From("devices"),
               "must start");
}

}  // namespace
}  // namespace idivm
