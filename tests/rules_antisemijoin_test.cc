// Unit tests for the antisemijoin rules (Table 13): the inverse flow of
// right-side changes (inserts delete, deletes insert), and left-side
// behaviour matching selection-like filtering.

#include "gtest/gtest.h"
#include "src/algebra/plan_printer.h"
#include "src/core/rules.h"

namespace idivm {
namespace {

class RulesAntiTest : public ::testing::Test {
 protected:
  RulesAntiTest() {
    db_.CreateTable("l", Schema({{"lid", DataType::kInt64},
                                 {"k", DataType::kInt64},
                                 {"v", DataType::kDouble}}),
                    {"lid"});
    db_.CreateTable("s", Schema({{"sid", DataType::kInt64},
                                 {"sk", DataType::kInt64},
                                 {"w", DataType::kDouble}}),
                    {"sid"});
    plan_ = PlanNode::AntiSemiJoin(
        PlanNode::Scan("l"), PlanNode::Scan("s"),
        And(Eq(Col("k"), Col("sk")), Gt(Col("w"), Lit(Value(1.0)))));
  }

  RuleContext MakeContext() {
    RuleContext ctx;
    ctx.op = plan_.get();
    ctx.db = &db_;
    ctx.node_name = "anti";
    ctx.output_schema = db_.GetTable("l").schema();
    ctx.output_ids = {"lid"};
    ctx.input_post = {PlanNode::Scan("l"), PlanNode::Scan("s")};
    ctx.input_pre = {PlanNode::Scan("l", StateTag::kPre),
                     PlanNode::Scan("s", StateTag::kPre)};
    ctx.input_schemas = {db_.GetTable("l").schema(),
                         db_.GetTable("s").schema()};
    ctx.input_ids = {{"lid"}, {"sid"}};
    return ctx;
  }

  Database db_;
  PlanPtr plan_;
};

TEST_F(RulesAntiTest, LeftInsertAntiFiltered) {
  RuleContext ctx = MakeContext();
  const DiffSchema diff(DiffType::kInsert, "l", db_.GetTable("l").schema(),
                        {"lid"}, {}, {"k", "v"});
  const auto out = PropagateThroughAntiSemiJoin(ctx, "d", diff, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kInsert);
  EXPECT_NE(PlanToString(out[0].query).find("⋉̄"), std::string::npos);
}

TEST_F(RulesAntiTest, LeftDeletePassesThrough) {
  RuleContext ctx = MakeContext();
  const DiffSchema diff(DiffType::kDelete, "l", db_.GetTable("l").schema(),
                        {"lid"}, {"k", "v"}, {});
  const auto out = PropagateThroughAntiSemiJoin(ctx, "d", diff, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kDelete);
  EXPECT_TRUE(IsTransientOnly(out[0].query));
}

TEST_F(RulesAntiTest, LeftNonConditionalUpdatePasses) {
  RuleContext ctx = MakeContext();
  const DiffSchema diff(DiffType::kUpdate, "l", db_.GetTable("l").schema(),
                        {"lid"}, {"k", "v"}, {"v"});
  const auto out = PropagateThroughAntiSemiJoin(ctx, "d", diff, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kUpdate);
  EXPECT_TRUE(IsTransientOnly(out[0].query));
}

TEST_F(RulesAntiTest, RightInsertDeletesFromView) {
  // New right tuples knock left tuples out (the inverse flow).
  RuleContext ctx = MakeContext();
  const DiffSchema diff(DiffType::kInsert, "s", db_.GetTable("s").schema(),
                        {"sid"}, {}, {"sk", "w"});
  const auto out = PropagateThroughAntiSemiJoin(ctx, "d", diff, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kDelete);
  EXPECT_EQ(out[0].schema.id_columns(), (std::vector<std::string>{"lid"}));
}

TEST_F(RulesAntiTest, RightDeleteReadmitsLeftTuples) {
  RuleContext ctx = MakeContext();
  const DiffSchema diff(DiffType::kDelete, "s", db_.GetTable("s").schema(),
                        {"sid"}, {"sk", "w"}, {});
  const auto out = PropagateThroughAntiSemiJoin(ctx, "d", diff, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kInsert);
  // Re-admission must verify no OTHER right tuple still blocks.
  EXPECT_NE(PlanToString(out[0].query).find("⋉̄"), std::string::npos);
}

TEST_F(RulesAntiTest, RightConditionalUpdateProducesBoth) {
  RuleContext ctx = MakeContext();
  const DiffSchema diff(DiffType::kUpdate, "s", db_.GetTable("s").schema(),
                        {"sid"}, {"sk", "w"}, {"w"});
  const auto out = PropagateThroughAntiSemiJoin(ctx, "d", diff, 1);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kDelete);
  EXPECT_EQ(out[1].schema.type(), DiffType::kInsert);
}

// ---- semijoin (⋉) — the existential dual ----

class RulesSemiTest : public RulesAntiTest {
 protected:
  RuleContext MakeSemiContext() {
    semi_plan_ = PlanNode::SemiJoin(
        PlanNode::Scan("l"), PlanNode::Scan("s"),
        And(Eq(Col("k"), Col("sk")), Gt(Col("w"), Lit(Value(1.0)))));
    RuleContext ctx = MakeContext();
    ctx.op = semi_plan_.get();
    return ctx;
  }
  PlanPtr semi_plan_;
};

TEST_F(RulesSemiTest, LeftInsertFiltered) {
  RuleContext ctx = MakeSemiContext();
  const DiffSchema diff(DiffType::kInsert, "l", db_.GetTable("l").schema(),
                        {"lid"}, {}, {"k", "v"});
  const auto out = PropagateThroughSemiJoin(ctx, "d", diff, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kInsert);
  EXPECT_NE(PlanToString(out[0].query).find("⋉["), std::string::npos);
}

TEST_F(RulesSemiTest, RightInsertAdmitsLeftRows) {
  // Inverse of the antisemijoin: new witnesses INSERT into the view.
  RuleContext ctx = MakeSemiContext();
  const DiffSchema diff(DiffType::kInsert, "s", db_.GetTable("s").schema(),
                        {"sid"}, {}, {"sk", "w"});
  const auto out = PropagateThroughSemiJoin(ctx, "d", diff, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kInsert);
}

TEST_F(RulesSemiTest, RightDeleteMayOrphanLeftRows) {
  RuleContext ctx = MakeSemiContext();
  const DiffSchema diff(DiffType::kDelete, "s", db_.GetTable("s").schema(),
                        {"sid"}, {"sk", "w"}, {});
  const auto out = PropagateThroughSemiJoin(ctx, "d", diff, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kDelete);
  // Orphan check must verify no OTHER witness remains.
  EXPECT_NE(PlanToString(out[0].query).find("⋉̄"), std::string::npos);
}

TEST_F(RulesSemiTest, LeftNonConditionalUpdatePasses) {
  RuleContext ctx = MakeSemiContext();
  const DiffSchema diff(DiffType::kUpdate, "l", db_.GetTable("l").schema(),
                        {"lid"}, {"k", "v"}, {"v"});
  const auto out = PropagateThroughSemiJoin(ctx, "d", diff, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kUpdate);
  EXPECT_TRUE(IsTransientOnly(out[0].query));
}

TEST_F(RulesAntiTest, RightNonConditionalUpdateNotTriggered) {
  // w is in the condition; use a wider s with an untouched payload column.
  db_.CreateTable("s2", Schema({{"sid", DataType::kInt64},
                                {"sk", DataType::kInt64},
                                {"w", DataType::kDouble},
                                {"note", DataType::kString}}),
                  {"sid"});
  PlanPtr plan = PlanNode::AntiSemiJoin(
      PlanNode::Scan("l"), PlanNode::Scan("s2"),
      And(Eq(Col("k"), Col("sk")), Gt(Col("w"), Lit(Value(1.0)))));
  RuleContext ctx = MakeContext();
  ctx.op = plan.get();
  ctx.input_post[1] = PlanNode::Scan("s2");
  ctx.input_pre[1] = PlanNode::Scan("s2", StateTag::kPre);
  ctx.input_schemas[1] = db_.GetTable("s2").schema();
  const DiffSchema diff(DiffType::kUpdate, "s2",
                        db_.GetTable("s2").schema(), {"sid"},
                        {"sk", "w", "note"}, {"note"});
  EXPECT_TRUE(PropagateThroughAntiSemiJoin(ctx, "d", diff, 1).empty());
}

}  // namespace
}  // namespace idivm
