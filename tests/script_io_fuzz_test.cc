// Fuzzing the ∆-script repository parser (src/core/script_io): a loaded
// script is external input, so every truncation and byte-level mutation of
// a valid serialization must come back as a parse error — never a crash,
// abort, or exception. The corpus is a real serialized BSMA view (the
// richest script shape: joins, aggregates, caches, diff registries).

#include <string>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/core/compose.h"
#include "src/core/maintainer.h"
#include "src/core/script_io.h"
#include "src/core/view_manager.h"
#include "src/workload/bsma.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

class ScriptIoFuzzTest : public ::testing::Test {
 protected:
  ScriptIoFuzzTest() {
    BsmaConfig config;
    config.users = 60;
    config.friends_per_user = 4;
    config.num_cities = 5;
    config.num_topics = 8;
    workload_ = std::make_unique<BsmaWorkload>(&db_, config);
    // qs1 is an aggregate over a join: exercises plans, γ steps, caches
    // and the full diff registry in one serialization.
    view_ = std::make_unique<CompiledView>(
        CompileView("v", workload_->ViewPlan("qs1"), db_));
    corpus_ = SerializeCompiledView(*view_);
  }

  Database db_;
  std::unique_ptr<BsmaWorkload> workload_;
  std::unique_ptr<CompiledView> view_;
  std::string corpus_;
};

TEST_F(ScriptIoFuzzTest, CorpusRoundTrips) {
  const LoadResult result = LoadCompiledView(corpus_, db_);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(SerializeCompiledView(result.view), corpus_);
}

// Every prefix of the corpus is a truncated dump: load must either fail
// with a message or — when only trailing whitespace was cut — still
// round-trip to the full corpus. Never a crash.
TEST_F(ScriptIoFuzzTest, EveryTruncationIsAParseError) {
  for (size_t len = 0; len < corpus_.size(); ++len) {
    const LoadResult result = LoadCompiledView(corpus_.substr(0, len), db_);
    if (result.ok) {
      EXPECT_EQ(SerializeCompiledView(result.view), corpus_)
          << "truncation at " << len << " parsed to a different view";
    } else {
      EXPECT_FALSE(result.error.empty()) << "truncation at " << len;
    }
  }
}

// Seeded random byte mutations: flip 1-8 bytes to arbitrary values. The
// result either parses (a benign mutation, e.g. inside a string literal or
// a number that stays in range) or fails with an error — but never aborts.
TEST_F(ScriptIoFuzzTest, RandomByteMutationsNeverCrash) {
  Rng rng(20260805);
  const int rounds = 4000;
  int parsed = 0;
  for (int round = 0; round < rounds; ++round) {
    std::string mutated = corpus_;
    const int flips = static_cast<int>(rng.UniformInt(1, 8));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
      mutated[pos] = static_cast<char>(rng.UniformInt(0, 255));
    }
    const LoadResult result = LoadCompiledView(mutated, db_);
    if (result.ok) {
      ++parsed;
    } else {
      EXPECT_FALSE(result.error.empty()) << "round " << round;
    }
  }
  // Sanity: the fuzz is actually reaching the parser's error paths.
  EXPECT_LT(parsed, rounds);
}

// Structured mutations: splice random digit strings over numeric tokens to
// hit the enum-tag and out-of-range integer validation specifically.
TEST_F(ScriptIoFuzzTest, NumericSplicesAreRejectedNotFatal) {
  Rng rng(42);
  const char* splices[] = {"9",      "99",       "-1",
                           "999999", "12345678", "99999999999999999999"};
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = corpus_;
    // Find a random digit position and overwrite with a splice.
    size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(mutated.size()) - 1));
    while (pos < mutated.size() &&
           (mutated[pos] < '0' || mutated[pos] > '9')) {
      ++pos;
    }
    if (pos >= mutated.size()) continue;
    const char* splice =
        splices[rng.UniformInt(0, std::size(splices) - 1)];
    mutated = mutated.substr(0, pos) + splice + mutated.substr(pos + 1);
    const LoadResult result = LoadCompiledView(mutated, db_);
    if (!result.ok) {
      EXPECT_FALSE(result.error.empty()) << "round " << round;
    }
  }
}

// The repository wrapper (header + per-view sections) is hardened too.
TEST_F(ScriptIoFuzzTest, RepositoryTruncationsAreErrors) {
  Database db;
  testing::LoadRunningExample(&db);
  ViewManager vm(&db);
  vm.DefineView("v_spj", testing::RunningExampleSpjPlan(db));
  vm.DefineView("v_agg", testing::RunningExampleAggPlan(db));
  const std::string repo = vm.SerializeRepository();

  Database replica;
  testing::LoadRunningExample(&replica);
  ViewManager target(&replica);
  // Loading needs the view/cache tables to exist; mirror them.
  for (const std::string& name : db.TableNames()) {
    if (!replica.HasTable(name)) {
      const Table& table = db.GetTable(name);
      replica.CreateTable(name, table.schema(), table.key_columns());
    }
  }
  for (size_t len = 0; len < repo.size(); ++len) {
    ViewManager fresh(&replica);
    const std::string error = fresh.LoadRepository(repo.substr(0, len));
    if (error.empty()) {
      // Only trailer bytes were cut: both views must have loaded whole.
      EXPECT_EQ(fresh.ViewNames().size(), 2u)
          << "repository truncation at " << len << " half-loaded";
    }
  }
  ViewManager full(&replica);
  EXPECT_EQ(full.LoadRepository(repo), "");
}

}  // namespace
}  // namespace idivm
