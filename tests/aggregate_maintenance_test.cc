// Focused tests for the blocking aggregation rules (Tables 7, 9, 11, 12):
// the additive SUM/COUNT path, the AVG operator cache, MIN/MAX recompute,
// group creation/deletion, NULL handling, and non-root aggregates.

#include "gtest/gtest.h"
#include "src/core/compose.h"
#include "src/core/maintainer.h"
#include "src/core/modification_log.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

class AggMaintTest : public ::testing::Test {
 protected:
  AggMaintTest() {
    Table& t = db_.CreateTable("m", Schema({{"id", DataType::kInt64},
                                            {"grp", DataType::kString},
                                            {"x", DataType::kDouble}}),
                               {"id"});
    t.BulkLoadUncounted(Relation(
        t.schema(),
        {{Value(int64_t{1}), Value("a"), Value(10.0)},
         {Value(int64_t{2}), Value("a"), Value(20.0)},
         {Value(int64_t{3}), Value("b"), Value(30.0)},
         {Value(int64_t{4}), Value("b"), Value::Null()}}));
  }

  void Check(Maintainer& m, ModificationLogger& logger) {
    m.Maintain(logger.NetChanges());
    logger.Clear();
    testing::ExpectViewMatchesRecompute(&db_, m.view().plan,
                                        m.view().view_name);
  }

  Database db_;
};

TEST_F(AggMaintTest, SumCountAdditivePath) {
  const PlanPtr plan = PlanNode::Aggregate(
      PlanNode::Scan("m"), {"grp"},
      {{AggFunc::kSum, Col("x"), "total"}, {AggFunc::kCount, nullptr, "n"}});
  Maintainer m(&db_, CompileView("v", plan, db_));
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("m", {Value(int64_t{1})}, {"x"}, {Value(15.0)}));
  Check(m, logger);
  const auto row = db_.GetTable("v").LookupByKeyUncounted({Value("a")});
  ASSERT_TRUE(row.has_value());
  EXPECT_DOUBLE_EQ((*row)[1].AsDouble(), 35.0);
  EXPECT_EQ((*row)[2].AsInt64(), 2);
}

TEST_F(AggMaintTest, NullToValueUpdateFixesSumAndCount) {
  const PlanPtr plan = PlanNode::Aggregate(
      PlanNode::Scan("m"), {"grp"},
      {{AggFunc::kSum, Col("x"), "total"},
       {AggFunc::kCount, Col("x"), "nx"}});
  Maintainer m(&db_, CompileView("v", plan, db_));
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("m", {Value(int64_t{4})}, {"x"}, {Value(5.0)}));
  Check(m, logger);
  const auto row = db_.GetTable("v").LookupByKeyUncounted({Value("b")});
  EXPECT_DOUBLE_EQ((*row)[1].AsDouble(), 35.0);
  EXPECT_EQ((*row)[2].AsInt64(), 2);  // non-null count grew
}

TEST_F(AggMaintTest, GroupMoveViaGroupAttributeUpdate) {
  const PlanPtr plan = PlanNode::Aggregate(
      PlanNode::Scan("m"), {"grp"},
      {{AggFunc::kSum, Col("x"), "total"}, {AggFunc::kCount, nullptr, "n"}});
  Maintainer m(&db_, CompileView("v", plan, db_));
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("m", {Value(int64_t{1})}, {"grp"}, {Value("b")}));
  Check(m, logger);
  // Moving the last row out deletes the group entirely.
  EXPECT_TRUE(logger.Update("m", {Value(int64_t{2})}, {"grp"}, {Value("c")}));
  Check(m, logger);
  EXPECT_FALSE(
      db_.GetTable("v").LookupByKeyUncounted({Value("a")}).has_value());
  EXPECT_TRUE(
      db_.GetTable("v").LookupByKeyUncounted({Value("c")}).has_value());
}

TEST_F(AggMaintTest, AvgUsesOperatorCache) {
  const PlanPtr plan = PlanNode::Aggregate(
      PlanNode::Scan("m"), {"grp"}, {{AggFunc::kAvg, Col("x"), "mean"}});
  Maintainer m(&db_, CompileView("v", plan, db_));
  // An opcache table was created (Table 12's Cache_sum/Cache_count).
  bool has_opcache = false;
  for (const std::string& cache : m.view().cache_tables) {
    if (cache.find("__opcache_") != std::string::npos) has_opcache = true;
  }
  EXPECT_TRUE(has_opcache);
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("m", {Value(int64_t{2})}, {"x"}, {Value(40.0)}));
  EXPECT_TRUE(logger.Insert("m", {Value(int64_t{5}), Value("a"), Value(10.0)}));
  Check(m, logger);
  const auto row = db_.GetTable("v").LookupByKeyUncounted({Value("a")});
  EXPECT_DOUBLE_EQ((*row)[1].AsDouble(), 20.0);  // (10+40+10)/3
}

TEST_F(AggMaintTest, AvgOverAllNullGroupIsNull) {
  const PlanPtr plan = PlanNode::Aggregate(
      PlanNode::Scan("m"), {"grp"}, {{AggFunc::kAvg, Col("x"), "mean"}});
  Maintainer m(&db_, CompileView("v", plan, db_));
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("m", {Value(int64_t{3})}, {"x"}, {Value::Null()}));
  Check(m, logger);
  const auto row = db_.GetTable("v").LookupByKeyUncounted({Value("b")});
  ASSERT_TRUE(row.has_value());
  EXPECT_TRUE((*row)[1].is_null());
}

TEST_F(AggMaintTest, MinMaxRecomputeMode) {
  const PlanPtr plan = PlanNode::Aggregate(
      PlanNode::Scan("m"), {"grp"},
      {{AggFunc::kMin, Col("x"), "lo"}, {AggFunc::kMax, Col("x"), "hi"}});
  Maintainer m(&db_, CompileView("v", plan, db_));
  ModificationLogger logger(&db_);
  // Shrinking the max forces a true recompute (not delta-able).
  EXPECT_TRUE(logger.Update("m", {Value(int64_t{2})}, {"x"}, {Value(1.0)}));
  Check(m, logger);
  const auto row = db_.GetTable("v").LookupByKeyUncounted({Value("a")});
  EXPECT_DOUBLE_EQ((*row)[1].AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ((*row)[2].AsDouble(), 10.0);
}

TEST_F(AggMaintTest, DeleteLastRowDeletesGroup) {
  const PlanPtr plan = PlanNode::Aggregate(
      PlanNode::Scan("m"), {"grp"},
      {{AggFunc::kSum, Col("x"), "total"}});
  Maintainer m(&db_, CompileView("v", plan, db_));
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Delete("m", {Value(int64_t{3})}));
  EXPECT_TRUE(logger.Delete("m", {Value(int64_t{4})}));
  Check(m, logger);
  EXPECT_EQ(db_.GetTable("v").size(), 1u);
}

TEST_F(AggMaintTest, InsertCreatesGroup) {
  const PlanPtr plan = PlanNode::Aggregate(
      PlanNode::Scan("m"), {"grp"},
      {{AggFunc::kSum, Col("x"), "total"}, {AggFunc::kCount, nullptr, "n"}});
  Maintainer m(&db_, CompileView("v", plan, db_));
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Insert("m", {Value(int64_t{9}), Value("z"), Value(7.0)}));
  Check(m, logger);
  const auto row = db_.GetTable("v").LookupByKeyUncounted({Value("z")});
  ASSERT_TRUE(row.has_value());
  EXPECT_DOUBLE_EQ((*row)[1].AsDouble(), 7.0);
}

TEST_F(AggMaintTest, NonRootAggregateUsesAbsoluteUpdates) {
  // σ above γ: the aggregate's update diffs must carry absolute values
  // (via the SUM+COUNT opcache), not additive deltas.
  const PlanPtr agg = PlanNode::Aggregate(
      PlanNode::Scan("m"), {"grp"},
      {{AggFunc::kSum, Col("x"), "total"}});
  const PlanPtr plan =
      PlanNode::Select(agg, Gt(Col("total"), Lit(Value(25.0))));
  Maintainer m(&db_, CompileView("v", plan, db_));
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("m", {Value(int64_t{1})}, {"x"}, {Value(25.0)}));  // a: 45
  Check(m, logger);
  EXPECT_TRUE(logger.Update("m", {Value(int64_t{1})}, {"x"}, {Value(1.0)}));  // a: 21
  Check(m, logger);
  EXPECT_FALSE(
      db_.GetTable("v").LookupByKeyUncounted({Value("a")}).has_value());
}

TEST_F(AggMaintTest, CountStarVsCountArg) {
  const PlanPtr plan = PlanNode::Aggregate(
      PlanNode::Scan("m"), {"grp"},
      {{AggFunc::kCount, nullptr, "rows"},
       {AggFunc::kCount, Col("x"), "vals"}});
  Maintainer m(&db_, CompileView("v", plan, db_));
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Insert("m", {Value(int64_t{10}), Value("b"), Value::Null()}));
  Check(m, logger);
  const auto row = db_.GetTable("v").LookupByKeyUncounted({Value("b")});
  EXPECT_EQ((*row)[1].AsInt64(), 3);  // rows
  EXPECT_EQ((*row)[2].AsInt64(), 1);  // non-null values
}

}  // namespace
}  // namespace idivm
