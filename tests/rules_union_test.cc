// Unit tests for the union all rules (Table 5): branch tagging and key
// extension with b.

#include "gtest/gtest.h"
#include "src/core/rules.h"

namespace idivm {
namespace {

class RulesUnionTest : public ::testing::Test {
 protected:
  RulesUnionTest() {
    db_.CreateTable("a", Schema({{"id", DataType::kInt64},
                                 {"v", DataType::kDouble}}),
                    {"id"});
    db_.CreateTable("b2", Schema({{"id", DataType::kInt64},
                                  {"v", DataType::kDouble}}),
                    {"id"});
    plan_ = PlanNode::UnionAll(PlanNode::Scan("a"), PlanNode::Scan("b2"),
                               "b");
  }

  RuleContext MakeContext() {
    RuleContext ctx;
    ctx.op = plan_.get();
    ctx.db = &db_;
    ctx.node_name = "u";
    ctx.output_schema = InferSchema(plan_, db_);
    ctx.output_ids = {"id", "b"};
    ctx.input_post = {PlanNode::Scan("a"), PlanNode::Scan("b2")};
    ctx.input_pre = {PlanNode::Scan("a", StateTag::kPre),
                     PlanNode::Scan("b2", StateTag::kPre)};
    ctx.input_schemas = {db_.GetTable("a").schema(),
                         db_.GetTable("b2").schema()};
    ctx.input_ids = {{"id"}, {"id"}};
    return ctx;
  }

  Database db_;
  PlanPtr plan_;
};

TEST_F(RulesUnionTest, UpdateGetsBranchKey) {
  RuleContext ctx = MakeContext();
  const DiffSchema diff(DiffType::kUpdate, "a", db_.GetTable("a").schema(),
                        {"id"}, {"v"}, {"v"});
  const auto left = PropagateThroughUnionAll(ctx, "d", diff, 0);
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(left[0].schema.id_columns(),
            (std::vector<std::string>{"id", "b"}));
  EXPECT_TRUE(IsTransientOnly(left[0].query));

  // Right-branch diffs get b = 1.
  const auto right = PropagateThroughUnionAll(ctx, "d", diff, 1);
  ASSERT_EQ(right.size(), 1u);
  EXPECT_NE(right[0].rule_description.find("b→1"), std::string::npos);
}

TEST_F(RulesUnionTest, InsertCarriesFullOutputKey) {
  RuleContext ctx = MakeContext();
  const DiffSchema diff(DiffType::kInsert, "a", db_.GetTable("a").schema(),
                        {"id"}, {}, {"v"});
  const auto out = PropagateThroughUnionAll(ctx, "d", diff, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kInsert);
  EXPECT_EQ(out[0].schema.id_columns(),
            (std::vector<std::string>{"id", "b"}));
  // Layout matches the schema: ids (id, b) then v__post.
  EXPECT_EQ(InferSchema(out[0].query, db_).ColumnNames(),
            out[0].schema.relation_schema().ColumnNames());
}

TEST_F(RulesUnionTest, DeletePassesWithBranch) {
  RuleContext ctx = MakeContext();
  const DiffSchema diff(DiffType::kDelete, "b2",
                        db_.GetTable("b2").schema(), {"id"}, {"v"}, {});
  const auto out = PropagateThroughUnionAll(ctx, "d", diff, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kDelete);
  EXPECT_EQ(InferSchema(out[0].query, db_).ColumnNames(),
            out[0].schema.relation_schema().ColumnNames());
}

}  // namespace
}  // namespace idivm
