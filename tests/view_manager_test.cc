// Tests for the Fig. 3 façade: multi-view management, eager vs deferred
// refresh, and view lifecycle.

#include "gtest/gtest.h"
#include "src/core/view_manager.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

class ViewManagerTest : public ::testing::Test {
 protected:
  ViewManagerTest() { testing::LoadRunningExample(&db_); }

  // Price of the (did, pid) row in view "v" (robust to the view's key
  // column order).
  double PriceOf(const std::string& did, const std::string& pid) {
    Table& v = db_.GetTable("v");
    const auto rows = v.LookupWhereEquals(
        v.schema().ColumnIndices({"did", "pid"}),
        {Value(did), Value(pid)});
    EXPECT_EQ(rows.size(), 1u);
    return rows.at(0)[v.schema().ColumnIndex("price")].AsDouble();
  }

  Database db_;
};

TEST_F(ViewManagerTest, DeferredRefreshMaintainsAllViews) {
  ViewManager manager(&db_);
  manager.DefineView("v", testing::RunningExampleSpjPlan(db_));
  manager.DefineView("vp", testing::RunningExampleAggPlan(db_));
  EXPECT_EQ(manager.ViewNames(), (std::vector<std::string>{"v", "vp"}));

  manager.Update("parts", {Value("P1")}, {"price"}, {Value(13.0)});
  manager.Insert("devices_parts", {Value("D2"), Value("P2")});
  // Views are stale until Refresh (deferred IVM).
  EXPECT_DOUBLE_EQ(PriceOf("D1", "P1"), 10.0);

  const auto results = manager.Refresh();
  EXPECT_EQ(results.size(), 2u);
  testing::ExpectViewMatchesRecompute(
      &db_, manager.GetView("v").view().plan, "v");
  testing::ExpectViewMatchesRecompute(
      &db_, manager.GetView("vp").view().plan, "vp");
  // Second refresh with no changes is free.
  EXPECT_TRUE(manager.Refresh().empty());
}

TEST_F(ViewManagerTest, EagerRefreshKeepsViewsFresh) {
  ViewManager manager(&db_, RefreshMode::kEager);
  manager.DefineView("v", testing::RunningExampleSpjPlan(db_));
  manager.Update("parts", {Value("P1")}, {"price"}, {Value(13.0)});
  // Fresh immediately, no explicit Refresh.
  EXPECT_DOUBLE_EQ(PriceOf("D1", "P1"), 13.0);
  manager.Delete("devices_parts", {Value("D2"), Value("P1")});
  testing::ExpectViewMatchesRecompute(
      &db_, manager.GetView("v").view().plan, "v");
}

TEST_F(ViewManagerTest, DropViewRemovesTablesAndCaches) {
  ViewManager manager(&db_);
  Maintainer& m = manager.DefineView("vp",
                                     testing::RunningExampleAggPlan(db_));
  const std::vector<std::string> caches = m.view().cache_tables;
  ASSERT_FALSE(caches.empty());
  manager.DropView("vp");
  EXPECT_FALSE(db_.HasTable("vp"));
  for (const std::string& cache : caches) {
    EXPECT_FALSE(db_.HasTable(cache));
  }
  EXPECT_FALSE(manager.HasView("vp"));
}

TEST_F(ViewManagerTest, DuplicateViewRejected) {
  ViewManager manager(&db_);
  manager.DefineView("v", testing::RunningExampleSpjPlan(db_));
  EXPECT_DEATH(manager.DefineView("v", testing::RunningExampleSpjPlan(db_)),
               "already defined");
}

TEST_F(ViewManagerTest, RepositoryPersistence) {
  // Compile two views, persist the repository, and continue maintenance in
  // a "new process" (a fresh ViewManager over the same database).
  std::string dump;
  {
    ViewManager manager(&db_);
    manager.DefineView("v", testing::RunningExampleSpjPlan(db_));
    manager.DefineView("vp", testing::RunningExampleAggPlan(db_));
    dump = manager.SerializeRepository();
  }
  ViewManager reloaded(&db_);
  const std::string error = reloaded.LoadRepository(dump);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(reloaded.ViewNames(), (std::vector<std::string>{"v", "vp"}));

  reloaded.Update("parts", {Value("P1")}, {"price"}, {Value(15.0)});
  reloaded.Refresh();
  testing::ExpectViewMatchesRecompute(
      &db_, reloaded.GetView("v").view().plan, "v");
  testing::ExpectViewMatchesRecompute(
      &db_, reloaded.GetView("vp").view().plan, "vp");
}

TEST_F(ViewManagerTest, RepositoryLoadErrors) {
  ViewManager manager(&db_);
  EXPECT_FALSE(manager.LoadRepository("nonsense").empty());
}

TEST_F(ViewManagerTest, FailedModificationsAreNotLogged) {
  ViewManager manager(&db_);
  manager.DefineView("v", testing::RunningExampleSpjPlan(db_));
  EXPECT_FALSE(manager.Delete("parts", {Value("P99")}));
  EXPECT_FALSE(manager.Update("parts", {Value("P99")}, {"price"},
                              {Value(1.0)}));
  EXPECT_TRUE(manager.Refresh().empty());
}

}  // namespace
}  // namespace idivm
