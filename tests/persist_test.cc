// Unit and integration tests for the durability subsystem: codec framing,
// WAL round-trips and sync policies, snapshot atomicity, and snapshot +
// WAL-replay recovery through the compiled ∆-scripts.

#include <cstdio>

#include "gtest/gtest.h"
#include "src/common/str_util.h"
#include "src/core/view_manager.h"
#include "src/persist/codec.h"
#include "src/persist/fault.h"
#include "src/persist/recovery.h"
#include "src/persist/snapshot.h"
#include "src/persist/wal.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

using persist::Crc32c;
using persist::Decoder;
using persist::Encoder;
using persist::FaultFile;
using persist::FrameStatus;
using persist::LoadSnapshotInto;
using persist::ReadWal;
using persist::Recover;
using persist::RecoverMode;
using persist::RecoverOptions;
using persist::RecoverResult;
using persist::SnapshotLoadResult;
using persist::WalOptions;
using persist::WalReadResult;
using persist::WalRecordType;
using persist::WalSyncPolicy;
using persist::WalWriter;
using persist::WriteSnapshot;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "idivm_persist_" + name;
}

TEST(CodecTest, Crc32cKnownVector) {
  // The canonical CRC-32C check value.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  EXPECT_NE(Crc32c("a"), Crc32c("b"));
}

TEST(CodecTest, PrimitiveRoundTrip) {
  Encoder enc;
  enc.PutU8(0xAB);
  enc.PutU32(0xDEADBEEFu);
  enc.PutU64(0x0123456789ABCDEFull);
  enc.PutI64(-42);
  enc.PutDouble(-3.25);
  enc.PutString(std::string("nul\0inside", 10));
  Decoder dec(enc.buffer());
  EXPECT_EQ(dec.GetU8(), 0xAB);
  EXPECT_EQ(dec.GetU32(), 0xDEADBEEFu);
  EXPECT_EQ(dec.GetU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(dec.GetI64(), -42);
  EXPECT_DOUBLE_EQ(dec.GetDouble(), -3.25);
  EXPECT_EQ(dec.GetString(), std::string("nul\0inside", 10));
  EXPECT_TRUE(dec.ok());
  EXPECT_TRUE(dec.AtEnd());
}

TEST(CodecTest, ValueRowSchemaRoundTrip) {
  const Row row = {Value::Null(), Value(int64_t{-7}), Value(2.5),
                   Value("héllo"), Value(int64_t{1} << 62)};
  const Schema schema({{"id", DataType::kInt64},
                       {"price", DataType::kDouble},
                       {"name", DataType::kString},
                       {"opt", DataType::kNull}});
  Encoder enc;
  enc.PutRow(row);
  enc.PutSchema(schema);
  Decoder dec(enc.buffer());
  const Row got = dec.GetRow();
  const Schema got_schema = dec.GetSchema();
  ASSERT_TRUE(dec.ok()) << dec.error();
  EXPECT_TRUE(dec.AtEnd());
  ASSERT_EQ(got.size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ(got[i].type(), row[i].type()) << i;
    EXPECT_EQ(got[i].Compare(row[i]), 0) << i;
  }
  EXPECT_EQ(got_schema, schema);
}

TEST(CodecTest, DecoderFailsCleanlyOnUnderflow) {
  Encoder enc;
  enc.PutU32(100);  // declares a 100-byte string that is not there
  Decoder dec(enc.buffer());
  dec.GetString();
  EXPECT_FALSE(dec.ok());
  EXPECT_NE(dec.error().find("underflow"), std::string::npos);
  // Subsequent reads stay failed and return zero values.
  EXPECT_EQ(dec.GetU64(), 0u);
  EXPECT_FALSE(dec.ok());
}

TEST(CodecTest, FrameDetectsCorruptionAndTears) {
  std::string file;
  persist::AppendFrame("hello", &file);
  persist::AppendFrame("world!", &file);

  auto first = persist::ReadFrame(file, 0);
  ASSERT_EQ(first.status, FrameStatus::kOk);
  EXPECT_EQ(first.payload, "hello");
  auto second = persist::ReadFrame(file, first.end_offset);
  ASSERT_EQ(second.status, FrameStatus::kOk);
  EXPECT_EQ(second.payload, "world!");
  EXPECT_EQ(persist::ReadFrame(file, second.end_offset).status,
            FrameStatus::kEnd);

  // Bit flip in the second payload: CRC mismatch.
  std::string flipped = file;
  flipped[first.end_offset + 8] ^= 0x04;
  EXPECT_EQ(persist::ReadFrame(flipped, first.end_offset).status,
            FrameStatus::kCorrupt);

  // Torn tail: header or payload cut short.
  EXPECT_EQ(persist::ReadFrame(file.substr(0, 3), 0).status,
            FrameStatus::kTorn);
  EXPECT_EQ(persist::ReadFrame(file.substr(0, 10), 0).status,
            FrameStatus::kTorn);
}

Modification MakeInsert(Row post) {
  Modification mod;
  mod.kind = DiffType::kInsert;
  mod.post = std::move(post);
  return mod;
}

TEST(WalTest, RoundTripAllRecordTypes) {
  const std::string path = TempPath("wal_roundtrip.wal");
  {
    auto wal = WalWriter::Open(path);
    ASSERT_NE(wal, nullptr);
    EXPECT_EQ(wal->JournalModification(
                  "parts", MakeInsert({Value("P9"), Value(1.5)})),
              1u);
    Modification del;
    del.kind = DiffType::kDelete;
    del.pre = {Value("P9"), Value(1.5)};
    EXPECT_EQ(wal->JournalModification("parts", del), 2u);
    Modification upd;
    upd.kind = DiffType::kUpdate;
    upd.pre = {Value("P1"), Value(10.0)};
    upd.post = {Value("P1"), Value(11.0)};
    EXPECT_EQ(wal->JournalModification("parts", upd), 3u);
    EXPECT_EQ(wal->JournalCommit(), 4u);
    EXPECT_EQ(wal->JournalCheckpoint(4, "/some/snapshot"), 5u);
    EXPECT_EQ(wal->last_lsn(), 5u);
  }
  const WalReadResult read = ReadWal(path);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_FALSE(read.truncated);
  ASSERT_EQ(read.records.size(), 5u);
  EXPECT_EQ(read.records[0].type, WalRecordType::kInsert);
  EXPECT_EQ(read.records[0].table, "parts");
  EXPECT_EQ(read.records[0].mod.post[0].AsString(), "P9");
  EXPECT_EQ(read.records[1].type, WalRecordType::kDelete);
  EXPECT_EQ(read.records[2].type, WalRecordType::kUpdate);
  EXPECT_DOUBLE_EQ(read.records[2].mod.post[1].AsDouble(), 11.0);
  EXPECT_EQ(read.records[3].type, WalRecordType::kCommit);
  EXPECT_EQ(read.records[4].type, WalRecordType::kCheckpoint);
  EXPECT_EQ(read.records[4].snapshot_lsn, 4u);
  EXPECT_EQ(read.records[4].snapshot_path, "/some/snapshot");
  for (size_t i = 0; i < read.records.size(); ++i) {
    EXPECT_EQ(read.records[i].lsn, i + 1);
  }
}

TEST(WalTest, SyncPoliciesProduceIdenticalLogs) {
  auto write_with = [](const std::string& path, WalOptions options) {
    auto wal = WalWriter::Open(path, options);
    ASSERT_NE(wal, nullptr);
    for (int i = 0; i < 10; ++i) {
      wal->JournalModification(
          "t", MakeInsert({Value(int64_t{i}), Value(i * 1.0)}));
      if (i % 3 == 2) wal->JournalCommit();
    }
  };
  const std::string none = TempPath("wal_sync_none.wal");
  const std::string commit = TempPath("wal_sync_commit.wal");
  const std::string every = TempPath("wal_sync_every.wal");
  write_with(none, WalOptions{.sync = WalSyncPolicy::kNone});
  write_with(commit, WalOptions{.sync = WalSyncPolicy::kOnCommit});
  write_with(every,
             WalOptions{.sync = WalSyncPolicy::kEveryN, .every_n = 2});
  std::string a, b, c;
  ASSERT_TRUE(persist::ReadFileToString(none, &a));
  ASSERT_TRUE(persist::ReadFileToString(commit, &b));
  ASSERT_TRUE(persist::ReadFileToString(every, &c));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(WalTest, ParseSyncPolicy) {
  WalSyncPolicy policy;
  EXPECT_TRUE(persist::ParseWalSyncPolicy("none", &policy));
  EXPECT_EQ(policy, WalSyncPolicy::kNone);
  EXPECT_TRUE(persist::ParseWalSyncPolicy("on-commit", &policy));
  EXPECT_EQ(policy, WalSyncPolicy::kOnCommit);
  EXPECT_TRUE(persist::ParseWalSyncPolicy("every-n", &policy));
  EXPECT_EQ(policy, WalSyncPolicy::kEveryN);
  EXPECT_FALSE(persist::ParseWalSyncPolicy("fsync-sometimes", &policy));
}

TEST(WalTest, TornTailTruncatesAtLastValidRecord) {
  const std::string path = TempPath("wal_torn.wal");
  {
    auto wal = WalWriter::Open(path);
    for (int i = 0; i < 5; ++i) {
      wal->JournalModification(
          "t", MakeInsert({Value(int64_t{i}), Value("payload")}));
    }
    wal->JournalCommit();
  }
  const WalReadResult full = ReadWal(path);
  ASSERT_TRUE(full.ok);
  ASSERT_EQ(full.records.size(), 6u);

  // Cut 3 bytes into the last record.
  FaultFile fault(path, TempPath("wal_torn_scratch.wal"));
  const WalReadResult torn =
      ReadWal(fault.TruncatedAt(full.record_end_offsets[4] + 3));
  ASSERT_TRUE(torn.ok);
  EXPECT_TRUE(torn.truncated);
  EXPECT_NE(torn.truncate_reason.find("torn"), std::string::npos);
  EXPECT_EQ(torn.records.size(), 5u);
  EXPECT_EQ(torn.valid_bytes, full.record_end_offsets[4]);
}

TEST(WalTest, BitFlipTruncatesAtCorruptRecord) {
  const std::string path = TempPath("wal_flip.wal");
  {
    auto wal = WalWriter::Open(path);
    for (int i = 0; i < 4; ++i) {
      wal->JournalModification(
          "t", MakeInsert({Value(int64_t{i}), Value("some payload here")}));
    }
  }
  const WalReadResult full = ReadWal(path);
  ASSERT_EQ(full.records.size(), 4u);
  FaultFile fault(path, TempPath("wal_flip_scratch.wal"));
  // Flip a bit in the third record's payload.
  const WalReadResult flipped =
      ReadWal(fault.WithBitFlip(full.record_end_offsets[2] - 5, 3));
  ASSERT_TRUE(flipped.ok);
  EXPECT_TRUE(flipped.truncated);
  EXPECT_EQ(flipped.records.size(), 2u);
  EXPECT_EQ(flipped.valid_bytes, full.record_end_offsets[1]);
}

TEST(WalTest, EmptyOrMissingFileIsValidEmptyLog) {
  const WalReadResult missing = ReadWal(TempPath("wal_never_created.wal"));
  EXPECT_FALSE(missing.ok);  // unreadable is an error, not an empty log
  const std::string path = TempPath("wal_empty.wal");
  std::fclose(std::fopen(path.c_str(), "wb"));
  const WalReadResult empty = ReadWal(path);
  EXPECT_TRUE(empty.ok);
  EXPECT_TRUE(empty.records.empty());
}

TEST(WalTest, GarbageFileRejected) {
  const std::string path = TempPath("wal_garbage.wal");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("this is not a wal at all, not even close", f);
  std::fclose(f);
  const WalReadResult read = ReadWal(path);
  EXPECT_FALSE(read.ok);
  EXPECT_NE(read.error.find("magic"), std::string::npos);
}

TEST(SnapshotTest, RoundTripTablesRepositoryAndLsn) {
  Database db;
  testing::LoadRunningExample(&db);
  ViewManager manager(&db);
  manager.DefineView("v", testing::RunningExampleSpjPlan(db));
  const std::string path = TempPath("snap_roundtrip.snap");
  ASSERT_EQ(WriteSnapshot(db, manager.SerializeRepository(), 42, path), "");

  Database restored;
  SnapshotLoadResult loaded = LoadSnapshotInto(&restored, path);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.last_lsn, 42u);
  ASSERT_EQ(restored.TableNames(), db.TableNames());
  for (const std::string& name : db.TableNames()) {
    const Table& a = db.GetTable(name);
    const Table& b = restored.GetTable(name);
    EXPECT_EQ(a.schema(), b.schema()) << name;
    EXPECT_EQ(a.key_columns(), b.key_columns()) << name;
    EXPECT_TRUE(
        a.SnapshotUncounted().BagEquals(b.SnapshotUncounted()))
        << name;
  }
  ViewManager restored_manager(&restored);
  EXPECT_EQ(restored_manager.LoadRepository(loaded.repository), "");
  EXPECT_TRUE(restored_manager.HasView("v"));
}

TEST(SnapshotTest, WriteIsAtomicAndDetectsCorruption) {
  Database db;
  testing::LoadRunningExample(&db);
  const std::string path = TempPath("snap_atomic.snap");
  ASSERT_EQ(WriteSnapshot(db, "", 7, path), "");
  // No temp file left behind.
  std::string dummy;
  EXPECT_FALSE(persist::ReadFileToString(path + ".tmp", &dummy));

  // A flipped bit anywhere in the frame is detected at load.
  FaultFile fault(path, TempPath("snap_atomic_scratch.snap"));
  Database restored;
  const SnapshotLoadResult bad =
      LoadSnapshotInto(&restored, fault.WithBitFlip(fault.source_size() / 2,
                                                    5));
  EXPECT_FALSE(bad.ok);
  EXPECT_NE(bad.error.find("damaged"), std::string::npos);
}

// ---- End-to-end recovery on the running example ---------------------------

class RecoveryTest : public ::testing::Test {
 protected:
  // Builds the durable engine, snapshots, runs `batches` refresh batches
  // of logged modifications, and returns without tearing the WAL down —
  // "the process then crashes".
  void RunWorkload(const std::string& tag, int batches) {
    snapshot_path_ = TempPath("rec_" + tag + ".snap");
    wal_path_ = TempPath("rec_" + tag + ".wal");
    db_ = std::make_unique<Database>();
    testing::LoadRunningExample(db_.get());
    manager_ = std::make_unique<ViewManager>(db_.get());
    manager_->DefineView("v", testing::RunningExampleSpjPlan(*db_));
    manager_->DefineView("vp", testing::RunningExampleAggPlan(*db_));
    wal_ = WalWriter::Open(wal_path_);
    ASSERT_NE(wal_, nullptr);
    ASSERT_EQ(
        WriteSnapshot(*db_, manager_->SerializeRepository(), 0,
                      snapshot_path_),
        "");
    manager_->set_journal(wal_.get());
    int64_t next_part = 100;
    for (int b = 0; b < batches; ++b) {
      manager_->Insert("parts",
                       {Value(StrCat("P", next_part)), Value(b * 1.0)});
      manager_->Insert("devices_parts",
                       {Value("D1"), Value(StrCat("P", next_part))});
      manager_->Update("parts", {Value("P1")}, {"price"},
                       {Value(10.0 + b)});
      if (b % 3 == 2) {
        manager_->Delete("devices_parts",
                         {Value("D1"), Value(StrCat("P", next_part))});
      }
      ++next_part;
      manager_->Refresh();
    }
    wal_->Flush();
  }

  RecoverResult RecoverInto(Database* db, ViewManager* vm,
                            RecoverOptions options = {}) {
    return Recover(db, vm, snapshot_path_, wal_path_, options);
  }

  std::string snapshot_path_;
  std::string wal_path_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<ViewManager> manager_;
  std::unique_ptr<WalWriter> wal_;
};

TEST_F(RecoveryTest, ReplayRestoresViewsExactly) {
  RunWorkload("replay", 7);
  Database db2;
  ViewManager vm2(&db2);
  const RecoverResult result = RecoverInto(&db2, &vm2);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.wal_truncated);
  EXPECT_EQ(result.batches_applied, 7u);
  EXPECT_EQ(result.records_discarded, 0u);
  EXPECT_GT(result.modifications_applied, 0u);
  EXPECT_TRUE(vm2.HasView("v"));
  EXPECT_TRUE(vm2.HasView("vp"));
  for (const std::string& view : {"v", "vp"}) {
    // Recovered contents match the pre-crash engine...
    EXPECT_TRUE(db2.GetTable(view).SnapshotUncounted().BagEquals(
        db_->GetTable(view).SnapshotUncounted()))
        << view;
    // ...and a from-scratch recompute over the recovered base tables.
    testing::ExpectViewMatchesRecompute(
        &db2, vm2.GetView(view).view().plan, view);
  }
  // The recovered engine keeps working: maintain a further change.
  vm2.Insert("parts", {Value("P999"), Value(5.0)});
  vm2.Insert("devices_parts", {Value("D2"), Value("P999")});
  vm2.Refresh();
  testing::ExpectViewMatchesRecompute(&db2, vm2.GetView("v").view().plan,
                                      "v");
}

TEST_F(RecoveryTest, RecomputeModeMatchesReplay) {
  RunWorkload("recompute", 5);
  Database replayed, recomputed;
  ViewManager vm_replay(&replayed), vm_recompute(&recomputed);
  const RecoverResult a = RecoverInto(&replayed, &vm_replay);
  const RecoverResult b = RecoverInto(
      &recomputed, &vm_recompute,
      RecoverOptions{.mode = RecoverMode::kRecompute});
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_TRUE(b.ok) << b.error;
  EXPECT_EQ(a.last_applied_lsn, b.last_applied_lsn);
  for (const std::string& view : {"v", "vp"}) {
    EXPECT_TRUE(replayed.GetTable(view).SnapshotUncounted().BagEquals(
        recomputed.GetTable(view).SnapshotUncounted()))
        << view;
  }
}

TEST_F(RecoveryTest, UncommittedTailIsDiscarded) {
  RunWorkload("tail", 3);
  // Journal two more modifications with no COMMIT behind them.
  manager_->Insert("parts", {Value("P500"), Value(1.0)});
  manager_->Update("parts", {Value("P1")}, {"price"}, {Value(99.0)});
  wal_->Flush();

  Database db2;
  ViewManager vm2(&db2);
  const RecoverResult result = RecoverInto(&db2, &vm2);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.records_discarded, 2u);
  EXPECT_EQ(result.batches_applied, 3u);
  // The uncommitted insert is not in the recovered state.
  EXPECT_FALSE(db2.GetTable("parts")
                   .LookupByKeyUncounted({Value("P500")})
                   .has_value());
  for (const std::string& view : {"v", "vp"}) {
    testing::ExpectViewMatchesRecompute(
        &db2, vm2.GetView(view).view().plan, view);
  }
}

TEST_F(RecoveryTest, ParallelReplayMatchesSequentialBitForBit) {
  RunWorkload("parallel", 6);
  Database seq_db, par_db;
  ViewManager seq_vm(&seq_db), par_vm(&par_db);
  const RecoverResult seq =
      RecoverInto(&seq_db, &seq_vm, RecoverOptions{.threads = 1});
  const RecoverResult par =
      RecoverInto(&par_db, &par_vm, RecoverOptions{.threads = 4});
  ASSERT_TRUE(seq.ok) << seq.error;
  ASSERT_TRUE(par.ok) << par.error;
  EXPECT_EQ(seq.last_applied_lsn, par.last_applied_lsn);
  // Deferred-charging determinism extends to recovery: identical contents
  // AND identical access counts across thread counts.
  EXPECT_EQ(seq.accesses.index_lookups, par.accesses.index_lookups);
  EXPECT_EQ(seq.accesses.tuple_reads, par.accesses.tuple_reads);
  EXPECT_EQ(seq.accesses.tuple_writes, par.accesses.tuple_writes);
  for (const std::string& view : {"v", "vp"}) {
    EXPECT_TRUE(seq_db.GetTable(view).SnapshotUncounted().BagEquals(
        par_db.GetTable(view).SnapshotUncounted()))
        << view;
  }
}

TEST_F(RecoveryTest, MissingSnapshotReportsError) {
  RunWorkload("missing", 1);
  Database db2;
  ViewManager vm2(&db2);
  const RecoverResult result =
      Recover(&db2, &vm2, TempPath("no_such.snap"), wal_path_);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("cannot read"), std::string::npos);
}

}  // namespace
}  // namespace idivm
