// Unit tests for the Value scalar type: typing, SQL equality, total order,
// hashing consistency, NULL semantics and printing.

#include "gtest/gtest.h"
#include "src/types/value.h"

namespace idivm {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), DataType::kNull);
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(int64_t{42}).AsInt64(), 42);
  EXPECT_EQ(Value(7).type(), DataType::kInt64);  // int promotes to int64
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
  EXPECT_EQ(Value(std::string("xy")).type(), DataType::kString);
}

TEST(ValueTest, NumericView) {
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).NumericAsDouble(), 3.0);
  EXPECT_DOUBLE_EQ(Value(3.5).NumericAsDouble(), 3.5);
  EXPECT_TRUE(Value(int64_t{1}).is_numeric());
  EXPECT_FALSE(Value("s").is_numeric());
  EXPECT_FALSE(Value().is_numeric());
}

TEST(ValueTest, SqlEqualsNullNeverEqual) {
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Null()));
  EXPECT_FALSE(Value(int64_t{1}).SqlEquals(Value::Null()));
  EXPECT_TRUE(Value(int64_t{1}).SqlEquals(Value(1.0)));  // cross-numeric
  EXPECT_TRUE(Value("a").SqlEquals(Value("a")));
  EXPECT_FALSE(Value("a").SqlEquals(Value("b")));
}

TEST(ValueTest, TotalOrder) {
  // NULL < numerics < strings.
  EXPECT_LT(Value::Null(), Value(int64_t{-100}));
  EXPECT_LT(Value(int64_t{5}), Value("a"));
  EXPECT_LT(Value(int64_t{2}), Value(int64_t{3}));
  EXPECT_LT(Value(2.5), Value(int64_t{3}));
  EXPECT_LT(Value("a"), Value("b"));
  // NULL == NULL under the total order (single group in GROUP BY).
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  // Equal numeric values across types compare equal-ish but stay ordered
  // deterministically: int before double.
  EXPECT_LT(Value(int64_t{3}), Value(3.0));
  EXPECT_EQ(Value(int64_t{3}).Compare(Value(3.0)) +
                Value(3.0).Compare(Value(int64_t{3})),
            0);  // antisymmetric
}

TEST(ValueTest, HashConsistentWithEquality) {
  // Cross-type numeric equality must hash identically (join keys).
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(7.0).Hash());
  EXPECT_EQ(Value("k").Hash(), Value(std::string("k")).Hash());
  // Distinct values usually hash differently (sanity, not a guarantee).
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(int64_t{2}).Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{12}).ToString(), "12");
  EXPECT_EQ(Value(2.0).ToString(), "2");  // integral doubles print clean
  EXPECT_EQ(Value("hi").ToString(), "hi");
}

TEST(ValueTest, LargeInt64ExactComparison) {
  const int64_t big = (int64_t{1} << 62) + 1;
  EXPECT_LT(Value(big), Value(big + 1));  // exact, not via double
  EXPECT_EQ(Value(big).Compare(Value(big)), 0);
}

}  // namespace
}  // namespace idivm
