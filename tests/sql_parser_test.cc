// Tests for the SQL front end: lexing, the paper's Fig. 1b/5b views,
// aliases/self-joins, anti joins, unions, aggregates, and error reporting.

#include "gtest/gtest.h"
#include "src/core/compose.h"
#include "src/core/maintainer.h"
#include "src/core/modification_log.h"
#include "src/sql/lexer.h"
#include "src/sql/parser.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

using sql::ParseResult;
using sql::ParseView;

class SqlParserTest : public ::testing::Test {
 protected:
  SqlParserTest() { testing::LoadRunningExample(&db_); }

  ParseResult Parse(const std::string& text) { return ParseView(text, db_); }

  Database db_;
};

TEST(SqlLexerTest, TokenKinds) {
  std::vector<sql::Token> tokens;
  std::string error;
  ASSERT_TRUE(sql::Lex("SELECT a.b, 3.5 FROM t WHERE x >= 'hi' -- c\n",
                       &tokens, &error))
      << error;
  EXPECT_EQ(tokens[0].kind, sql::TokenKind::kKeyword);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].text, "a.b");
  EXPECT_EQ(tokens[3].kind, sql::TokenKind::kNumber);
  EXPECT_EQ(tokens[8].text, ">=");
  EXPECT_EQ(tokens[9].kind, sql::TokenKind::kString);
  EXPECT_EQ(tokens[9].text, "hi");
  EXPECT_EQ(tokens.back().kind, sql::TokenKind::kEnd);
}

TEST(SqlLexerTest, Errors) {
  std::vector<sql::Token> tokens;
  std::string error;
  EXPECT_FALSE(sql::Lex("SELECT 'unterminated", &tokens, &error));
  EXPECT_NE(error.find("unterminated"), std::string::npos);
  tokens.clear();
  EXPECT_FALSE(sql::Lex("SELECT @", &tokens, &error));
}

TEST_F(SqlParserTest, Fig1bView) {
  const ParseResult result = Parse(
      "SELECT did, pid, price "
      "FROM parts NATURAL JOIN devices_parts NATURAL JOIN devices "
      "WHERE category = 'phone'");
  ASSERT_TRUE(result.ok()) << result.error;
  const Relation expected =
      testing::Recompute(&db_, testing::RunningExampleSpjPlan(db_));
  EXPECT_TRUE(testing::Recompute(&db_, result.plan).BagEquals(expected));
}

TEST_F(SqlParserTest, Fig5bAggregateView) {
  const ParseResult result = Parse(
      "SELECT did, SUM(price) AS cost "
      "FROM parts NATURAL JOIN devices_parts NATURAL JOIN devices "
      "WHERE category = 'phone' GROUP BY did");
  ASSERT_TRUE(result.ok()) << result.error;
  const Relation expected =
      testing::Recompute(&db_, testing::RunningExampleAggPlan(db_));
  EXPECT_TRUE(testing::Recompute(&db_, result.plan).BagEquals(expected));
}

TEST_F(SqlParserTest, ParsedViewIsMaintainable) {
  const ParseResult result = Parse(
      "SELECT did, SUM(price) AS cost, COUNT(*) AS n "
      "FROM parts NATURAL JOIN devices_parts GROUP BY did");
  ASSERT_TRUE(result.ok()) << result.error;
  Maintainer m(&db_, CompileView("v", result.plan, db_));
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(42.0)}));
  m.Maintain(logger.NetChanges());
  testing::ExpectViewMatchesRecompute(&db_, m.view().plan, "v");
}

TEST_F(SqlParserTest, AliasedSelfJoin) {
  const ParseResult result = Parse(
      "SELECT a.did AS d1, b.did AS d2 "
      "FROM devices_parts a JOIN devices_parts b "
      "ON a.pid = b.pid AND a.did < b.did");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(testing::Recompute(&db_, result.plan).size(), 2u);
}

TEST_F(SqlParserTest, AntiJoin) {
  const ParseResult result = Parse(
      "SELECT * FROM parts ANTI JOIN devices_parts dp ON pid = dp.pid");
  ASSERT_TRUE(result.ok()) << result.error;
  // Only P3 is unused (Fig. 2 instance).
  const Relation out = testing::Recompute(&db_, result.plan);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.rows()[0][0].AsString(), "P3");
}

TEST_F(SqlParserTest, SemiJoin) {
  const ParseResult result = Parse(
      "SELECT * FROM parts SEMI JOIN devices_parts dp ON pid = dp.pid");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(testing::Recompute(&db_, result.plan).size(), 2u);  // P1, P2

  // Semi + anti partition the base.
  const ParseResult anti = Parse(
      "SELECT * FROM parts ANTI JOIN devices_parts dp ON pid = dp.pid");
  EXPECT_EQ(testing::Recompute(&db_, result.plan).size() +
                testing::Recompute(&db_, anti.plan).size(),
            db_.GetTable("parts").size());
}

TEST_F(SqlParserTest, UnionAll) {
  const ParseResult result = Parse(
      "SELECT pid, price FROM parts WHERE price < 15 "
      "UNION ALL SELECT pid, price FROM parts WHERE price >= 15");
  ASSERT_TRUE(result.ok()) << result.error;
  const Relation out = testing::Recompute(&db_, result.plan);
  EXPECT_EQ(out.size(), 3u);
  EXPECT_TRUE(out.schema().HasColumn("branch"));
}

TEST_F(SqlParserTest, HavingAndExpressions) {
  const ParseResult result = Parse(
      "SELECT did, SUM(price * 2) AS double_cost "
      "FROM parts NATURAL JOIN devices_parts "
      "GROUP BY did HAVING double_cost > 30");
  ASSERT_TRUE(result.ok()) << result.error;
  const Relation out = testing::Recompute(&db_, result.plan);
  for (const Row& row : out.rows()) {
    EXPECT_GT(row[1].AsDouble(), 30.0);
  }
}

TEST_F(SqlParserTest, ScalarFunctionsAndIsNull) {
  const ParseResult result = Parse(
      "SELECT pid, abs(price - 15) AS dist FROM parts "
      "WHERE price IS NOT NULL AND NOT price IS NULL");
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(testing::Recompute(&db_, result.plan).size(), 3u);
}

TEST_F(SqlParserTest, ErrorMessages) {
  EXPECT_NE(Parse("SELECT * FROM nowhere").error.find("unknown table"),
            std::string::npos);
  EXPECT_NE(Parse("SELECT zzz FROM parts").error.find("unknown column"),
            std::string::npos);
  EXPECT_NE(Parse("SELECT price + 1 FROM parts").error.find("AS alias"),
            std::string::npos);
  EXPECT_NE(Parse("SELECT SUM(price) AS s FROM parts").error
                .find("GROUP BY"),
            std::string::npos);
  EXPECT_NE(Parse("SELECT pid, SUM(price) AS s FROM parts GROUP BY price")
                .error.find("must be a GROUP BY column"),
            std::string::npos);
  EXPECT_NE(Parse("SELECT pid FROM parts WHERE SUM(price) > 1").error
                .find("top-level"),
            std::string::npos);
  EXPECT_NE(Parse("SELECT pid FROM parts UNION SELECT pid FROM parts")
                .error.find("expected ALL"),
            std::string::npos);
  EXPECT_NE(Parse("SELECT pid FROM parts WHERE price > 1 blah").error
                .find("trailing"),
            std::string::npos);
}

TEST_F(SqlParserTest, BetweenAndIn) {
  const ParseResult between = Parse(
      "SELECT pid FROM parts WHERE price BETWEEN 15 AND 25");
  ASSERT_TRUE(between.ok()) << between.error;
  EXPECT_EQ(testing::Recompute(&db_, between.plan).size(), 2u);  // P2, P3

  const ParseResult in_list = Parse(
      "SELECT pid FROM parts WHERE pid IN ('P1', 'P3')");
  ASSERT_TRUE(in_list.ok()) << in_list.error;
  EXPECT_EQ(testing::Recompute(&db_, in_list.plan).size(), 2u);

  // Desugared forms stay maintainable views.
  Maintainer m(&db_, CompileView("v", between.plan, db_));
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(18.0)}));
  m.Maintain(logger.NetChanges());
  testing::ExpectViewMatchesRecompute(&db_, m.view().plan, "v");
}

TEST_F(SqlParserTest, QualifiedColumnsInWhere) {
  const ParseResult result = Parse(
      "SELECT p.pid, p.price FROM parts p WHERE p.price > 15");
  ASSERT_TRUE(result.ok()) << result.error;
  const Relation out = testing::Recompute(&db_, result.plan);
  EXPECT_EQ(out.size(), 2u);  // P2, P3 at 20
  EXPECT_EQ(out.schema().ColumnNames(),
            (std::vector<std::string>{"p_pid", "p_price"}));
}

}  // namespace
}  // namespace idivm
