// Unit tests for the generalized-projection rules (Table 8): function
// mapping, the "not triggered" case, σ_isupd, and key widening for
// Input-dependent items.

#include "gtest/gtest.h"
#include "src/algebra/plan_printer.h"
#include "src/core/rules.h"

namespace idivm {
namespace {

class RulesProjectTest : public ::testing::Test {
 protected:
  RulesProjectTest() {
    db_.CreateTable("r", Schema({{"id", DataType::kInt64},
                                 {"a", DataType::kDouble},
                                 {"b", DataType::kDouble}}),
                    {"id"});
  }

  RuleContext MakeContext(std::vector<ProjectItem> items) {
    plan_ = PlanNode::Project(PlanNode::Scan("r"), std::move(items));
    RuleContext ctx;
    ctx.op = plan_.get();
    ctx.db = &db_;
    ctx.node_name = "proj";
    ctx.output_schema = InferSchema(plan_, db_);
    ctx.output_ids = {"id"};
    ctx.input_post = {PlanNode::Scan("r")};
    ctx.input_pre = {PlanNode::Scan("r", StateTag::kPre)};
    ctx.input_schemas = {db_.GetTable("r").schema()};
    ctx.input_ids = {{"id"}};
    return ctx;
  }

  Database db_;
  PlanPtr plan_;
};

TEST_F(RulesProjectTest, UpdateOnProjectedOutAttrNotTriggered) {
  // π keeps id and a; updating b produces NO diff at all.
  RuleContext ctx = MakeContext({{Col("id"), "id"}, {Col("a"), "a"}});
  const DiffSchema diff(DiffType::kUpdate, "r", db_.GetTable("r").schema(),
                        {"id"}, {"a", "b"}, {"b"});
  EXPECT_TRUE(PropagateThroughProject(ctx, "d", diff).empty());
}

TEST_F(RulesProjectTest, FunctionComputedFromDiff) {
  RuleContext ctx = MakeContext(
      {{Col("id"), "id"}, {Mul(Col("a"), Lit(Value(2.0))), "double_a"}});
  const DiffSchema diff(DiffType::kUpdate, "r", db_.GetTable("r").schema(),
                        {"id"}, {"a", "b"}, {"a"});
  const auto out = PropagateThroughProject(ctx, "d", diff);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.post_columns(),
            (std::vector<std::string>{"double_a"}));
  EXPECT_TRUE(IsTransientOnly(out[0].query));
  // σ_isupd guards against no-op function results.
  EXPECT_NE(PlanToString(out[0].query).find("isnull"), std::string::npos);
}

TEST_F(RulesProjectTest, MixedFunctionNeedsInputAndWidensKey) {
  // score = a + b; diff updates a but carries no b: Input_post join needed
  // and the output diff must be keyed by the full ID.
  RuleContext ctx = MakeContext(
      {{Col("id"), "id"}, {Add(Col("a"), Col("b")), "score"}});
  const DiffSchema diff(DiffType::kUpdate, "r", db_.GetTable("r").schema(),
                        {"id"}, {"a"}, {"a"});
  const auto out = PropagateThroughProject(ctx, "d", diff);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(IsTransientOnly(out[0].query));
  EXPECT_EQ(out[0].schema.id_columns(), (std::vector<std::string>{"id"}));
}

TEST_F(RulesProjectTest, InsertMapsAllItems) {
  RuleContext ctx = MakeContext(
      {{Col("id"), "id"}, {Add(Col("a"), Col("b")), "score"}});
  const DiffSchema diff(DiffType::kInsert, "r", db_.GetTable("r").schema(),
                        {"id"}, {}, {"a", "b"});
  const auto out = PropagateThroughProject(ctx, "d", diff);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kInsert);
  EXPECT_TRUE(IsTransientOnly(out[0].query));
}

TEST_F(RulesProjectTest, DeleteCarriesRecoverablePre) {
  RuleContext ctx = MakeContext(
      {{Col("id"), "id"}, {Mul(Col("a"), Lit(Value(3.0))), "a3"}});
  const DiffSchema diff(DiffType::kDelete, "r", db_.GetTable("r").schema(),
                        {"id"}, {"a", "b"}, {});
  const auto out = PropagateThroughProject(ctx, "d", diff);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.pre_columns(), (std::vector<std::string>{"a3"}));
}

TEST_F(RulesProjectTest, RenamedKeyMapsThrough) {
  RuleContext ctx = MakeContext(
      {{Col("id"), "ident"}, {Col("a"), "a"}});
  ctx.output_ids = {"ident"};
  const DiffSchema diff(DiffType::kUpdate, "r", db_.GetTable("r").schema(),
                        {"id"}, {"a", "b"}, {"a"});
  const auto out = PropagateThroughProject(ctx, "d", diff);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.id_columns(), (std::vector<std::string>{"ident"}));
}

}  // namespace
}  // namespace idivm
