// Soak test: a dozen views of different shapes registered in one
// ViewManager over one database, maintained together through many random
// modification batches — exercising cross-view interactions (shared
// modification log, coexisting caches and opcaches, per-view scripts) that
// the single-view property tests cannot reach.

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/core/view_manager.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

class MultiViewStressTest : public ::testing::Test {
 protected:
  void LoadData(uint64_t seed) {
    Rng rng(seed);
    Table& r = db_.CreateTable("r", Schema({{"rid", DataType::kInt64},
                                            {"rb", DataType::kInt64},
                                            {"rc", DataType::kDouble},
                                            {"rs", DataType::kString}}),
                               {"rid"});
    Relation r_data(r.schema());
    for (int64_t i = 0; i < 60; ++i) {
      r_data.Append({Value(i), Value(rng.UniformInt(0, 7)),
                     Value(static_cast<double>(rng.UniformInt(0, 50))),
                     Value(rng.Bernoulli(0.5) ? "x" : "y")});
    }
    r.BulkLoadUncounted(r_data);
    next_rid_ = 60;

    Table& s = db_.CreateTable(
        "s", Schema({{"sid", DataType::kInt64}, {"se", DataType::kDouble}}),
        {"sid"});
    Relation s_data(s.schema());
    for (int64_t i = 0; i < 8; ++i) {
      s_data.Append(
          {Value(i), Value(static_cast<double>(rng.UniformInt(0, 20)))});
    }
    s.BulkLoadUncounted(s_data);

    Table& t = db_.CreateTable("t", Schema({{"tid", DataType::kInt64},
                                            {"tb", DataType::kInt64},
                                            {"tw", DataType::kDouble}}),
                               {"tid"});
    Relation t_data(t.schema());
    for (int64_t i = 0; i < 30; ++i) {
      t_data.Append({Value(i), Value(rng.UniformInt(0, 7)),
                     Value(static_cast<double>(rng.UniformInt(0, 30)))});
    }
    t.BulkLoadUncounted(t_data);
    next_tid_ = 30;
  }

  void DefineAllViews(ViewManager* manager) {
    manager->DefineView(
        "v_sel", PlanNode::Select(PlanNode::Scan("r"),
                                  Gt(Col("rc"), Lit(Value(20.0)))));
    manager->DefineView(
        "v_proj",
        PlanNode::Project(PlanNode::Scan("r"),
                          {{Col("rid"), "rid"},
                           {Add(Col("rc"), Col("rb")), "score"}}));
    manager->DefineView("v_join",
                        PlanNode::Join(PlanNode::Scan("r"),
                                       PlanNode::Scan("s"),
                                       Eq(Col("rb"), Col("sid"))));
    manager->DefineView(
        "v_agg", PlanNode::Aggregate(PlanNode::Scan("r"), {"rb"},
                                     {{AggFunc::kSum, Col("rc"), "total"},
                                      {AggFunc::kCount, nullptr, "n"}}));
    manager->DefineView(
        "v_avg", PlanNode::Aggregate(PlanNode::Scan("r"), {"rs"},
                                     {{AggFunc::kAvg, Col("rc"), "mean"}}));
    manager->DefineView(
        "v_agg_join",
        PlanNode::Aggregate(PlanNode::Join(PlanNode::Scan("r"),
                                           PlanNode::Scan("s"),
                                           Eq(Col("rb"), Col("sid"))),
                            {"sid"},
                            {{AggFunc::kSum, Mul(Col("rc"), Col("se")),
                              "weighted"}}));
    manager->DefineView(
        "v_anti",
        PlanNode::AntiSemiJoin(
            PlanNode::Scan("r"), PlanNode::Scan("t"),
            And(Eq(Col("rb"), Col("tb")), Gt(Col("tw"), Lit(Value(15.0))))));
    manager->DefineView(
        "v_minmax",
        PlanNode::Aggregate(PlanNode::Scan("t"), {"tb"},
                            {{AggFunc::kMin, Col("tw"), "lo"},
                             {AggFunc::kMax, Col("tw"), "hi"}}));
  }

  void RandomBatch(ViewManager* manager, Rng* rng) {
    const int ops = static_cast<int>(rng->UniformInt(4, 12));
    for (int i = 0; i < ops; ++i) {
      switch (rng->UniformInt(0, 7)) {
        case 0:
          manager->Insert("r", {Value(next_rid_++),
                                Value(rng->UniformInt(0, 7)),
                                Value(static_cast<double>(
                                    rng->UniformInt(0, 50))),
                                Value(rng->Bernoulli(0.5) ? "x" : "y")});
          break;
        case 1:
          manager->Delete("r", {Value(rng->UniformInt(0, next_rid_ - 1))});
          break;
        case 2:
        case 3:
          manager->Update("r", {Value(rng->UniformInt(0, next_rid_ - 1))},
                          {"rc"},
                          {Value(static_cast<double>(
                              rng->UniformInt(0, 50)))});
          break;
        case 4:
          manager->Update("r", {Value(rng->UniformInt(0, next_rid_ - 1))},
                          {"rb"}, {Value(rng->UniformInt(0, 7))});
          break;
        case 5:
          manager->Update("s", {Value(rng->UniformInt(0, 7))}, {"se"},
                          {Value(static_cast<double>(
                              rng->UniformInt(0, 20)))});
          break;
        case 6:
          manager->Insert("t", {Value(next_tid_++),
                                Value(rng->UniformInt(0, 7)),
                                Value(static_cast<double>(
                                    rng->UniformInt(0, 30)))});
          break;
        case 7:
          manager->Update("t", {Value(rng->UniformInt(0, next_tid_ - 1))},
                          {"tw"},
                          {Value(static_cast<double>(
                              rng->UniformInt(0, 30)))});
          break;
      }
    }
  }

  void CheckAllViews(ViewManager* manager, int round) {
    for (const std::string& name : manager->ViewNames()) {
      testing::ExpectViewMatchesRecompute(
          &db_, manager->GetView(name).view().plan, name,
          name + " after round " + std::to_string(round));
      if (::testing::Test::HasFailure()) return;
    }
  }

  Database db_;
  int64_t next_rid_ = 0;
  int64_t next_tid_ = 0;
};

TEST_F(MultiViewStressTest, DeferredSoak) {
  LoadData(101);
  ViewManager manager(&db_);
  DefineAllViews(&manager);
  Rng rng(202);
  for (int round = 0; round < 12; ++round) {
    RandomBatch(&manager, &rng);
    manager.Refresh();
    CheckAllViews(&manager, round);
    if (::testing::Test::HasFailure()) break;
  }
}

// Same soak as DeferredSoak, but every Refresh maintains the views on four
// worker threads (one view per worker, charges deferred through per-view
// arenas) — cross-checked against full recompute after each round.
TEST_F(MultiViewStressTest, DeferredSoakParallel) {
  LoadData(101);
  ViewManager manager(&db_);
  DefineAllViews(&manager);
  Rng rng(202);  // same seed as DeferredSoak: identical batch sequence
  for (int round = 0; round < 12; ++round) {
    RandomBatch(&manager, &rng);
    manager.Refresh(RefreshOptions{.threads = 4});
    CheckAllViews(&manager, round);
    if (::testing::Test::HasFailure()) break;
  }
}

TEST_F(MultiViewStressTest, EagerSoak) {
  LoadData(303);
  ViewManager manager(&db_, RefreshMode::kEager);
  DefineAllViews(&manager);
  Rng rng(404);
  for (int round = 0; round < 4; ++round) {
    RandomBatch(&manager, &rng);  // every op refreshes immediately
    CheckAllViews(&manager, round);
    if (::testing::Test::HasFailure()) break;
  }
}

TEST_F(MultiViewStressTest, SoakSurvivesRepositoryReload) {
  LoadData(505);
  std::string dump;
  {
    ViewManager manager(&db_);
    DefineAllViews(&manager);
    Rng rng(606);
    for (int round = 0; round < 3; ++round) {
      RandomBatch(&manager, &rng);
      manager.Refresh();
    }
    dump = manager.SerializeRepository();
  }
  ViewManager reloaded(&db_);
  ASSERT_TRUE(reloaded.LoadRepository(dump).empty());
  Rng rng(707);
  for (int round = 0; round < 3; ++round) {
    RandomBatch(&reloaded, &rng);
    reloaded.Refresh();
    CheckAllViews(&reloaded, round);
    if (::testing::Test::HasFailure()) break;
  }
}

}  // namespace
}  // namespace idivm
