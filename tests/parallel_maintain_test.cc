// Parallel ∆-script execution (MaintainOptions::threads > 1) must be
// observationally identical to sequential execution: same view contents and
// byte-identical AccessStats — per phase, database-wide, and per table —
// for every thread count. These tests assert that across the BSMA views,
// the running-example aggregate view, and repeated maintenance rounds
// (stats must never go backwards or double-count).

#include <map>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/core/compose.h"
#include "src/core/maintainer.h"
#include "src/core/modification_log.h"
#include "src/robust/fault_injection.h"
#include "src/robust/status.h"
#include "src/workload/bsma.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

void ExpectStatsEq(const AccessStats& expected, const AccessStats& actual,
                   const std::string& label) {
  EXPECT_EQ(expected.index_lookups, actual.index_lookups) << label;
  EXPECT_EQ(expected.tuple_reads, actual.tuple_reads) << label;
  EXPECT_EQ(expected.tuple_writes, actual.tuple_writes) << label;
}

// Everything observable about one maintenance run (except wall time).
struct RunObservation {
  std::string view_contents;
  AccessStats diff_computation;
  AccessStats cache_update;
  AccessStats view_update;
  AccessStats database_wide;
  int64_t diff_tuples_applied = 0;
  int64_t rows_touched = 0;
  int64_t dummy_tuples = 0;
};

void ExpectObservationEq(const RunObservation& expected,
                         const RunObservation& actual,
                         const std::string& label) {
  EXPECT_EQ(expected.view_contents, actual.view_contents) << label;
  ExpectStatsEq(expected.diff_computation, actual.diff_computation,
                label + " [diff computation]");
  ExpectStatsEq(expected.cache_update, actual.cache_update,
                label + " [cache update]");
  ExpectStatsEq(expected.view_update, actual.view_update,
                label + " [view update]");
  ExpectStatsEq(expected.database_wide, actual.database_wide,
                label + " [database-wide]");
  EXPECT_EQ(expected.diff_tuples_applied, actual.diff_tuples_applied)
      << label;
  EXPECT_EQ(expected.rows_touched, actual.rows_touched) << label;
  EXPECT_EQ(expected.dummy_tuples, actual.dummy_tuples) << label;
}

RunObservation Observe(Database* db, const std::string& view,
                       const MaintainResult& result) {
  RunObservation obs;
  obs.view_contents =
      db->GetTable(view).SnapshotUncounted().Sorted().ToString();
  obs.diff_computation = result.diff_computation.accesses;
  obs.cache_update = result.cache_update.accesses;
  obs.view_update = result.view_update.accesses;
  obs.database_wide = db->stats();
  obs.diff_tuples_applied = result.diff_tuples_applied;
  obs.rows_touched = result.rows_touched;
  obs.dummy_tuples = result.dummy_tuples;
  return obs;
}

// Every BSMA view, every thread count: identical contents and stats. The
// config seed is fixed, so each fresh workload replays the exact same data
// and update diffs.
TEST(ParallelMaintainTest, BsmaViewsDeterministicAcrossThreadCounts) {
  BsmaConfig config;
  config.users = 400;  // small scale: 8 views × 4 thread counts
  const int64_t kUpdates = 40;
  for (const std::string& view : BsmaWorkload::ViewNames()) {
    RunObservation baseline;
    for (const int threads : {1, 2, 4, 8}) {
      Database db;
      BsmaWorkload workload(&db, config);
      Maintainer m(&db, CompileView(view, workload.ViewPlan(view), db));
      ModificationLogger logger(&db);
      workload.ApplyUserUpdates(&logger, kUpdates);
      db.stats().Reset();
      const MaintainResult result =
          m.Maintain(logger.NetChanges(), MaintainOptions{.threads = threads});
      const RunObservation obs = Observe(&db, view, result);
      if (threads == 1) {
        baseline = obs;
        continue;
      }
      ExpectObservationEq(baseline, obs,
                          view + " threads=" + std::to_string(threads));
      testing::ExpectViewMatchesRecompute(&db, workload.ViewPlan(view), view,
                                          view + " vs recompute");
    }
  }
}

// The running-example aggregate view (γ step = blocking barrier) under a
// mixed insert/delete/update batch.
TEST(ParallelMaintainTest, AggregateViewDeterministicUnderMixedChanges) {
  auto run = [](int threads) -> RunObservation {
    Database db;
    testing::LoadRunningExample(&db);
    const PlanPtr plan = testing::RunningExampleAggPlan(db);
    Maintainer m(&db, CompileView("vagg", plan, db));
    ModificationLogger logger(&db);
    EXPECT_TRUE(logger.Insert("parts", {Value("P4"), Value(35.0)}));
    EXPECT_TRUE(logger.Insert("devices", {Value("D4"), Value("phone")}));
    EXPECT_TRUE(logger.Insert("devices_parts", {Value("D4"), Value("P4")}));
    EXPECT_TRUE(logger.Insert("devices_parts", {Value("D2"), Value("P2")}));
    EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(12.0)}));
    EXPECT_TRUE(logger.Delete("devices_parts", {Value("D1"), Value("P2")}));
    db.stats().Reset();
    const MaintainResult result =
        m.Maintain(logger.NetChanges(), MaintainOptions{.threads = threads});
    RunObservation obs = Observe(&db, "vagg", result);
    testing::ExpectViewMatchesRecompute(
        &db, plan, "vagg", "threads=" + std::to_string(threads));
    return obs;
  };
  const RunObservation baseline = run(1);
  for (const int threads : {2, 4, 8}) {
    ExpectObservationEq(baseline, run(threads),
                        "vagg threads=" + std::to_string(threads));
  }
}

// Regression for the shared-counter race the arenas exist to prevent:
// across repeated maintenance rounds the database-wide counters must be
// monotonically non-decreasing (a racy read-modify-write can lose updates,
// making totals go "backwards" relative to the work done) and must equal a
// sequential twin's counters after every round (no double-counting when
// arenas are published).
TEST(ParallelMaintainTest, StatsNeverRegressOrDoubleCountAcrossRounds) {
  BsmaConfig config;
  config.users = 300;

  Database par_db;
  BsmaWorkload par_workload(&par_db, config);
  Maintainer par_m(
      &par_db, CompileView("qs1", par_workload.ViewPlan("qs1"), par_db));

  Database seq_db;
  BsmaWorkload seq_workload(&seq_db, config);
  Maintainer seq_m(
      &seq_db, CompileView("qs1", seq_workload.ViewPlan("qs1"), seq_db));

  par_db.stats().Reset();
  seq_db.stats().Reset();
  AccessStats previous;  // zero
  for (int round = 0; round < 5; ++round) {
    const std::string label = "round " + std::to_string(round);
    {
      ModificationLogger logger(&par_db);
      par_workload.ApplyUserUpdates(&logger, 20);
      par_m.Maintain(logger.NetChanges(), MaintainOptions{.threads = 4});
    }
    {
      ModificationLogger logger(&seq_db);
      seq_workload.ApplyUserUpdates(&logger, 20);
      seq_m.Maintain(logger.NetChanges(), MaintainOptions{.threads = 1});
    }
    const AccessStats& current = par_db.stats();
    EXPECT_GE(current.index_lookups, previous.index_lookups) << label;
    EXPECT_GE(current.tuple_reads, previous.tuple_reads) << label;
    EXPECT_GE(current.tuple_writes, previous.tuple_writes) << label;
    EXPECT_GT(current.TotalAccesses(), previous.TotalAccesses()) << label;
    ExpectStatsEq(seq_db.stats(), current, label + " vs sequential twin");
    previous = current;
  }
}

// A fault injected into ONE worker of a parallel epoch must abort the
// whole epoch: every table rolled back byte-identically, stats exactly
// pre-epoch (failed epochs publish nothing), and a clean re-run at the
// same thread count must match the sequential baseline exactly. Runs under
// TSan in CI (the rollback path itself must be race-free).
TEST(ParallelMaintainTest, MidEpochFaultRollsBackAtEveryThreadCount) {
  BsmaConfig config;
  config.users = 200;
  const int64_t kUpdates = 25;

  auto snapshot_all = [](Database* db) {
    std::map<std::string, std::string> out;
    for (const std::string& name : db->TableNames()) {
      out[name] =
          db->GetTable(name).SnapshotUncounted().Sorted().ToString();
    }
    return out;
  };

  RunObservation baseline;
  for (const int threads : {1, 2, 4, 8}) {
    const std::string label = "threads=" + std::to_string(threads);
    Database db;
    BsmaWorkload workload(&db, config);
    Maintainer m(&db, CompileView("qs1", workload.ViewPlan("qs1"), db));
    ModificationLogger logger(&db);
    workload.ApplyUserUpdates(&logger, kUpdates);
    const auto net = logger.NetChanges();
    db.stats().Reset();

    // Size the fault surface with a never-firing probe on a twin database,
    // so the faulty run below can fail mid-script.
    uint64_t total_sites = 0;
    {
      Database twin;
      BsmaWorkload twin_workload(&twin, config);
      Maintainer twin_m(
          &twin, CompileView("qs1", twin_workload.ViewPlan("qs1"), twin));
      ModificationLogger twin_logger(&twin);
      twin_workload.ApplyUserUpdates(&twin_logger, kUpdates);
      FaultInjector probe;
      MaintainOptions options;
      options.threads = threads;
      options.fault = &probe;
      MaintainResult result;
      ASSERT_TRUE(
          twin_m.TryMaintain(twin_logger.NetChanges(), options, &result)
              .ok())
          << label;
      total_sites = probe.sites_visited();
    }
    ASSERT_GT(total_sites, 1u) << label;

    const std::map<std::string, std::string> before = snapshot_all(&db);
    const std::string stats_before = db.stats().ToString();

    FaultPlan plan;
    plan.fire_at_site = total_sites / 2;  // mid-epoch, whichever step owns it
    FaultInjector injector(plan);
    MaintainOptions options;
    options.threads = threads;
    options.fault = &injector;
    MaintainResult result;
    const Status status = m.TryMaintain(net, options, &result);
    ASSERT_FALSE(status.ok()) << label;
    EXPECT_EQ(status.code(), StatusCode::kInjectedFault) << label;

    const std::map<std::string, std::string> after = snapshot_all(&db);
    ASSERT_EQ(after.size(), before.size()) << label;
    for (const auto& [name, contents] : before) {
      EXPECT_EQ(after.at(name), contents) << label << ": table " << name;
    }
    EXPECT_EQ(db.stats().ToString(), stats_before) << label;

    // The epoch was all-or-nothing: a clean re-run lands exactly on the
    // sequential result.
    const MaintainResult clean =
        m.Maintain(net, MaintainOptions{.threads = threads});
    const RunObservation obs = Observe(&db, "qs1", clean);
    if (threads == 1) {
      baseline = obs;
    } else {
      ExpectObservationEq(baseline, obs, label + " after rollback");
    }
    testing::ExpectViewMatchesRecompute(&db, workload.ViewPlan("qs1"),
                                        "qs1", label);
  }
}

// Sanity for the arena machinery itself: charges made under an arena reach
// the destination exactly once, on Publish, and nested arenas compose.
TEST(ParallelMaintainTest, StatsArenaPublishesExactlyOnce) {
  AccessStats real;
  StatsArena outer;
  {
    ScopedStatsArena outer_scope(&outer);
    {
      StatsArena inner;
      {
        ScopedStatsArena inner_scope(&inner);
        ChargeSink(&real).tuple_reads += 3;
        ChargeSink(&real).index_lookups += 2;
      }
      EXPECT_EQ(real.tuple_reads, 0);  // still deferred
      inner.Publish();  // lands in `outer`, not in `real`
    }
    EXPECT_EQ(real.tuple_reads, 0);
    EXPECT_EQ(outer.Sum(&real).tuple_reads, 3);
    EXPECT_EQ(outer.Sum(&real).index_lookups, 2);
  }
  outer.Publish();
  EXPECT_EQ(real.tuple_reads, 3);
  EXPECT_EQ(real.index_lookups, 2);
  EXPECT_EQ(real.tuple_writes, 0);
  outer.Publish();  // cleared by the first publish: must be a no-op
  EXPECT_EQ(real.tuple_reads, 3);
}

}  // namespace
}  // namespace idivm
