// Unit tests for the Section 6 analytical cost model, including the paper's
// boundary discussions (when tuple-based could win, the a >= 1+p bound for
// aggregates, and the insert-loss bound).

#include "gtest/gtest.h"
#include "src/analysis/cost_model.h"

namespace idivm {
namespace {

TEST(CostModelTest, SpjFormulas) {
  SpjCostModel m;
  m.d = 100;
  m.p = 2;
  m.a = 10;
  EXPECT_DOUBLE_EQ(m.IdBasedCost(), 300);
  EXPECT_DOUBLE_EQ(m.TupleBasedCost(), 1400);
  EXPECT_NEAR(m.SpeedupRatio(), 14.0 / 3.0, 1e-12);
}

TEST(CostModelTest, SpjTupleCanOnlyWinInTheCornerCase) {
  // Section 6.1: tuple-based wins only when a < 1 - p, i.e. a < 1 AND
  // severe overestimation p << 1.
  SpjCostModel corner;
  corner.d = 100;
  corner.p = 0.1;  // severe overestimation
  corner.a = 0.5;  // shared join keys amortize accesses
  EXPECT_LT(corner.SpeedupRatio(), 1.0);
  // With a >= 1 the ID-based approach never loses.
  SpjCostModel normal = corner;
  normal.a = 1.0;
  EXPECT_GE(normal.SpeedupRatio(), 1.0);
}

TEST(CostModelTest, SpeedupGrowsWithJoinDepth) {
  // Fig. 12b's shape: a grows with the number of joins, p fixed.
  SpjCostModel m;
  m.d = 100;
  m.p = 2;
  double last = 0;
  for (double a : {5.0, 10.0, 20.0, 40.0}) {
    m.a = a;
    EXPECT_GT(m.SpeedupRatio(), last);
    last = m.SpeedupRatio();
  }
}

TEST(CostModelTest, AggFormulas) {
  AggCostModel m;
  m.d = 100;
  m.p = 2;
  m.a = 10;
  m.g = 0.5;
  EXPECT_DOUBLE_EQ(m.IdBasedCost(), 100 * (1 + 2 + 2));
  EXPECT_DOUBLE_EQ(m.TupleBasedCost(), 100 * (10 + 2));
  EXPECT_NEAR(m.SpeedupRatio(), 12.0 / 5.0, 1e-12);
}

TEST(CostModelTest, AggNeverLosesWhenAExceedsOnePlusP) {
  // Section 6.2 / Appendix A.2: a >= 1 + p always, hence speedup >= 1.
  for (double p : {0.5, 1.0, 2.0, 10.0}) {
    for (double g : {0.1, 0.5, 1.0}) {
      AggCostModel m;
      m.d = 1;
      m.p = p;
      m.g = g;
      m.a = 1 + p;  // the proven lower bound
      EXPECT_GE(m.SpeedupRatio(), 1.0) << "p=" << p << " g=" << g;
    }
  }
}

TEST(CostModelTest, InsertLossBounded) {
  // Section 6.2(b): losses on insert-heavy workloads are bounded — 1 per
  // tuple inserted into V_spj.
  EXPECT_LT(InsertBoundSpeedup(10, 2), 1.0);
  EXPECT_GT(InsertBoundSpeedup(10, 2), 10.0 / 13.0);
  EXPECT_NEAR(InsertBoundSpeedup(10, 0), 1.0, 1e-12);
}

TEST(CostModelTest, FormatModelRow) {
  const std::string row = FormatModelRow("label", 100, 101);
  EXPECT_NE(row.find("label"), std::string::npos);
  EXPECT_NE(row.find("+1.0%"), std::string::npos);
}

}  // namespace
}  // namespace idivm
