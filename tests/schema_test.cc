// Unit tests for Schema: lookup, extension, uniqueness enforcement.

#include "gtest/gtest.h"
#include "src/types/schema.h"

namespace idivm {
namespace {

Schema MakeSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"name", DataType::kString},
                 {"price", DataType::kDouble}});
}

TEST(SchemaTest, LookupByName) {
  const Schema s = MakeSchema();
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_EQ(s.ColumnIndex("name"), 1u);
  EXPECT_TRUE(s.HasColumn("price"));
  EXPECT_FALSE(s.HasColumn("missing"));
  EXPECT_EQ(s.FindColumn("missing"), std::nullopt);
}

TEST(SchemaTest, ColumnIndicesAndNames) {
  const Schema s = MakeSchema();
  EXPECT_EQ(s.ColumnIndices({"price", "id"}),
            (std::vector<size_t>{2, 0}));
  EXPECT_EQ(s.ColumnNames(),
            (std::vector<std::string>{"id", "name", "price"}));
  EXPECT_EQ(s.ColumnNameSet(),
            (std::set<std::string>{"id", "name", "price"}));
}

TEST(SchemaTest, Extend) {
  const Schema s = MakeSchema().Extend({{"extra", DataType::kInt64}});
  EXPECT_EQ(s.num_columns(), 4u);
  EXPECT_EQ(s.column(3).name, "extra");
}

TEST(SchemaDeathTest, DuplicateNamesRejected) {
  EXPECT_DEATH(Schema({{"a", DataType::kInt64}, {"a", DataType::kDouble}}),
               "duplicate column");
}

TEST(SchemaDeathTest, UnknownColumnIndexAborts) {
  const Schema s = MakeSchema();
  EXPECT_DEATH(s.ColumnIndex("nope"), "no column");
}

TEST(SchemaTest, EqualityIncludesTypes) {
  EXPECT_EQ(MakeSchema(), MakeSchema());
  const Schema other({{"id", DataType::kInt64},
                      {"name", DataType::kString},
                      {"price", DataType::kInt64}});
  EXPECT_FALSE(MakeSchema() == other);
}

}  // namespace
}  // namespace idivm
