// SegmentedWal edge cases: rotation at batch boundaries, truncation
// exactly at a COMMIT boundary, snapshot failure leaving every segment
// intact, resume-after-crash truncating back to the last batch boundary,
// and recovery replaying across segment seams.

#include <sys/stat.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/core/view_manager.h"
#include "src/persist/fault.h"
#include "src/persist/recovery.h"
#include "src/persist/snapshot.h"
#include "src/persist/wal.h"
#include "src/persist/wal_set.h"
#include "src/storage/database.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

using persist::FaultFile;
using persist::IsDirectory;
using persist::ReadSegmentedWal;
using persist::Recover;
using persist::RecoverResult;
using persist::SegmentedReadResult;
using persist::SegmentedWal;
using persist::SegmentedWalOptions;
using persist::TruncateFile;
using persist::WalRecordType;
using persist::WalSegmentInfo;
using persist::WriteSnapshot;
using ::idivm::testing::ExpectViewMatchesRecompute;
using ::idivm::testing::LoadRunningExample;
using ::idivm::testing::RunningExampleSpjPlan;

// A fresh (emptied) scratch directory under the test temp root.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "idivm_walset_" + name;
  const int rc = std::system(("rm -rf '" + dir + "'").c_str());
  EXPECT_EQ(rc, 0);
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

Modification InsertMod(int key) {
  Modification mod;
  mod.kind = DiffType::kInsert;
  mod.post = {Value(static_cast<int64_t>(key)), Value("payload")};
  return mod;
}

// One batch: `mods` modification records followed by a COMMIT. Returns the
// COMMIT's LSN.
uint64_t AppendBatch(SegmentedWal* wal, int mods, int key_base) {
  for (int i = 0; i < mods; ++i) {
    wal->JournalModification("t", InsertMod(key_base + i));
  }
  return wal->JournalCommit();
}

TEST(WalSegmentTest, RotatesOnlyAtBatchBoundaries) {
  const std::string dir = FreshDir("rotate");
  SegmentedWalOptions options;
  options.rotate_bytes = 1;  // rotate at the first boundary after any record
  auto wal = SegmentedWal::Open(dir, options);
  ASSERT_NE(wal, nullptr);

  // Mid-batch the size threshold is long passed, but no rotation happens
  // until the COMMIT lands.
  for (int i = 0; i < 5; ++i) wal->JournalModification("t", InsertMod(i));
  EXPECT_EQ(wal->Segments().size(), 1u);
  const uint64_t commit1 = wal->JournalCommit();
  ASSERT_EQ(wal->Segments().size(), 2u);  // rotated: closed + fresh active
  const std::vector<WalSegmentInfo> segments = wal->Segments();
  EXPECT_EQ(segments[0].first_lsn, 1u);
  EXPECT_EQ(segments[0].last_lsn, commit1);
  EXPECT_EQ(segments[1].first_lsn, commit1 + 1);
  EXPECT_EQ(segments[1].last_lsn, 0u);  // active, still empty

  const uint64_t commit2 = AppendBatch(wal.get(), 2, 100);
  wal.reset();

  const SegmentedReadResult read = ReadSegmentedWal(dir);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_FALSE(read.truncated);
  ASSERT_EQ(read.records.size(), 9u);
  for (size_t i = 0; i < read.records.size(); ++i) {
    EXPECT_EQ(read.records[i].lsn, i + 1);  // LSN-ordered concatenation
  }
  EXPECT_EQ(read.records.back().lsn, commit2);
  EXPECT_EQ(read.records.back().type, WalRecordType::kCommit);
}

TEST(WalSegmentTest, RotateRefusesAnEmptyActiveSegment) {
  const std::string dir = FreshDir("rotate_empty");
  auto wal = SegmentedWal::Open(dir);
  ASSERT_NE(wal, nullptr);
  EXPECT_FALSE(wal->Rotate());  // nothing journaled yet
  AppendBatch(wal.get(), 1, 0);
  EXPECT_TRUE(wal->Rotate());
  EXPECT_FALSE(wal->Rotate());  // fresh active is empty again
  EXPECT_EQ(wal->Segments().size(), 2u);
}

TEST(WalSegmentTest, TruncateExactlyAtCommitBoundary) {
  const std::string dir = FreshDir("truncate_commit");
  SegmentedWalOptions options;
  options.rotate_bytes = 1;
  auto wal = SegmentedWal::Open(dir, options);
  ASSERT_NE(wal, nullptr);
  const uint64_t commit1 = AppendBatch(wal.get(), 2, 0);    // segment 1
  const uint64_t commit2 = AppendBatch(wal.get(), 2, 100);  // segment 2
  AppendBatch(wal.get(), 2, 200);                           // segment 3
  ASSERT_EQ(wal->Segments().size(), 4u);

  // A snapshot covering exactly batch 1's COMMIT drops segment 1 alone.
  const uint64_t before = wal->TotalBytes();
  const uint64_t freed = wal->TruncateBefore(commit1);
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(wal->TotalBytes(), before - freed);
  SegmentedReadResult read = ReadSegmentedWal(dir);
  ASSERT_TRUE(read.ok) << read.error;
  ASSERT_FALSE(read.records.empty());
  EXPECT_EQ(read.records.front().lsn, commit1 + 1);

  // An LSN inside batch 2 (before its COMMIT) frees nothing: a segment is
  // deleted only when *all* its records are covered.
  EXPECT_EQ(wal->TruncateBefore(commit2 - 1), 0u);
  // Exactly at batch 2's COMMIT, its segment goes too.
  EXPECT_GT(wal->TruncateBefore(commit2), 0u);
  read = ReadSegmentedWal(dir);
  ASSERT_TRUE(read.ok) << read.error;
  ASSERT_FALSE(read.records.empty());
  EXPECT_EQ(read.records.front().lsn, commit2 + 1);
  wal.reset();
}

TEST(WalSegmentTest, TruncateNeverDeletesTheActiveSegment) {
  const std::string dir = FreshDir("truncate_active");
  SegmentedWalOptions options;
  options.rotate_bytes = 1;
  auto wal = SegmentedWal::Open(dir, options);
  ASSERT_NE(wal, nullptr);
  AppendBatch(wal.get(), 1, 0);
  AppendBatch(wal.get(), 1, 10);
  const uint64_t last = AppendBatch(wal.get(), 1, 20);

  // Covering every LSN ever written still leaves the active segment.
  wal->TruncateBefore(last + 1000);
  ASSERT_EQ(wal->Segments().size(), 1u);
  EXPECT_EQ(wal->Segments()[0].first_lsn, last + 1);

  // Appending afterwards continues the LSN sequence.
  const uint64_t next = AppendBatch(wal.get(), 1, 30);
  EXPECT_EQ(next, last + 2);
  wal.reset();
  const SegmentedReadResult read = ReadSegmentedWal(dir);
  ASSERT_TRUE(read.ok) << read.error;
  ASSERT_EQ(read.records.size(), 2u);
  EXPECT_EQ(read.records.front().lsn, last + 1);
}

TEST(WalSegmentTest, SnapshotFailureLeavesAllSegmentsIntact) {
  const std::string dir = FreshDir("snapshot_failure");
  SegmentedWalOptions options;
  options.rotate_bytes = 1;
  auto wal = SegmentedWal::Open(dir, options);
  ASSERT_NE(wal, nullptr);
  AppendBatch(wal.get(), 2, 0);
  AppendBatch(wal.get(), 2, 100);
  const std::vector<WalSegmentInfo> before = wal->Segments();
  const uint64_t bytes_before = wal->TotalBytes();

  // The snapshot write fails (unreachable path) — the housekeeping
  // contract is that nothing else happens: no checkpoint, no rotation, no
  // truncation, every segment byte still on disk.
  Database db;
  const std::string error = WriteSnapshot(
      db, "", wal->last_lsn(), dir + "/no_such_subdir/snapshot.bin");
  ASSERT_FALSE(error.empty());

  const std::vector<WalSegmentInfo> after = wal->Segments();
  ASSERT_EQ(after.size(), before.size());
  for (size_t i = 0; i < after.size(); ++i) {
    EXPECT_EQ(after[i].path, before[i].path);
    EXPECT_EQ(after[i].bytes, before[i].bytes);
  }
  EXPECT_EQ(wal->TotalBytes(), bytes_before);
  wal.reset();
  const SegmentedReadResult read = ReadSegmentedWal(dir);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_FALSE(read.truncated);
  EXPECT_EQ(read.records.size(), 6u);
}

TEST(WalSegmentTest, ReopenDiscardsUncommittedTail) {
  const std::string dir = FreshDir("uncommitted_tail");
  auto wal = SegmentedWal::Open(dir);
  ASSERT_NE(wal, nullptr);
  const uint64_t commit = AppendBatch(wal.get(), 2, 0);
  // Two valid but uncommitted records past the boundary.
  wal->JournalModification("t", InsertMod(100));
  wal->JournalModification("t", InsertMod(101));
  wal.reset();  // flushes; the tail records are on disk but uncommitted

  // Reopen truncates back to the COMMIT — exactly what Recover() would
  // discard — so resumed appends reuse the discarded LSNs.
  wal = SegmentedWal::Open(dir);
  ASSERT_NE(wal, nullptr);
  EXPECT_EQ(wal->last_lsn(), commit);
  const uint64_t next_commit = AppendBatch(wal.get(), 1, 200);
  EXPECT_EQ(next_commit, commit + 2);
  wal.reset();

  const SegmentedReadResult read = ReadSegmentedWal(dir);
  ASSERT_TRUE(read.ok) << read.error;
  EXPECT_FALSE(read.truncated);
  ASSERT_EQ(read.records.size(), 5u);
  EXPECT_EQ(read.records[2].type, WalRecordType::kCommit);
  EXPECT_EQ(read.records[3].lsn, commit + 1);  // the resumed batch
  EXPECT_EQ(read.records.back().type, WalRecordType::kCommit);
}

TEST(WalSegmentTest, ReopenTruncatesATornTailToTheLastBoundary) {
  const std::string dir = FreshDir("torn_tail");
  auto wal = SegmentedWal::Open(dir);
  ASSERT_NE(wal, nullptr);
  const uint64_t commit = AppendBatch(wal.get(), 2, 0);
  wal->JournalModification("t", InsertMod(100));
  wal->Sync();
  wal.reset();

  // Tear the last few bytes of the active segment (crash mid-write).
  SegmentedReadResult damaged = ReadSegmentedWal(dir);
  ASSERT_TRUE(damaged.ok) << damaged.error;
  ASSERT_EQ(damaged.segments.size(), 1u);
  const WalSegmentInfo& segment = damaged.segments.back();
  ASSERT_GT(segment.bytes, 5u);
  ASSERT_TRUE(TruncateFile(segment.path, segment.bytes - 3));

  const SegmentedReadResult read = ReadSegmentedWal(dir);
  EXPECT_TRUE(read.truncated);

  wal = SegmentedWal::Open(dir);
  ASSERT_NE(wal, nullptr);
  EXPECT_EQ(wal->last_lsn(), commit);  // torn record *and* the valid
                                       // uncommitted one are gone
  AppendBatch(wal.get(), 1, 200);
  wal.reset();
  const SegmentedReadResult resumed = ReadSegmentedWal(dir);
  ASSERT_TRUE(resumed.ok) << resumed.error;
  EXPECT_FALSE(resumed.truncated);
  EXPECT_EQ(resumed.records.size(), 5u);
}

TEST(WalSegmentTest, CorruptMiddleSegmentStopsTheReadAtTheDamage) {
  const std::string dir = FreshDir("bitflip");
  SegmentedWalOptions options;
  options.rotate_bytes = 1;
  auto wal = SegmentedWal::Open(dir, options);
  ASSERT_NE(wal, nullptr);
  AppendBatch(wal.get(), 2, 0);    // segment 1
  AppendBatch(wal.get(), 2, 100);  // segment 2
  wal.reset();

  SegmentedReadResult pristine = ReadSegmentedWal(dir);
  ASSERT_TRUE(pristine.ok) << pristine.error;
  ASSERT_GE(pristine.segments.size(), 2u);
  const std::string victim = pristine.segments[0].path;

  // Flip one payload bit in the *first* segment: the read keeps segment
  // 1's records before the damage and ignores everything after it —
  // including the whole of segment 2, which sits past the damage in
  // append order.
  FaultFile fault(victim, victim);
  fault.WithBitFlip(pristine.segments[0].bytes - 4, 3);
  const SegmentedReadResult read = ReadSegmentedWal(dir);
  EXPECT_TRUE(read.truncated);
  EXPECT_EQ(read.torn_segment, victim);
  for (const auto& record : read.records) {
    EXPECT_LT(record.lsn, pristine.segments[1].first_lsn);
  }
}

// End-to-end: a run journaled across several segments (snapshot mid-way,
// checkpoint, truncation) recovers to views identical to recompute, with
// replay crossing the segment seams.
TEST(WalSegmentTest, RecoveryReplaysAcrossSegmentSeams) {
  const std::string dir = FreshDir("recover_seam");
  const std::string snapshot = dir + "/snapshot.bin";
  const std::string wal_dir = dir + "/wal";
  ::mkdir(wal_dir.c_str(), 0755);

  {
    Database db;
    LoadRunningExample(&db);
    ViewManager vm(&db);
    vm.DefineView("v", RunningExampleSpjPlan(db));

    SegmentedWalOptions options;
    options.rotate_bytes = 1;  // a segment per batch: every replay batch
                               // crosses a seam
    auto wal = SegmentedWal::Open(wal_dir, options);
    ASSERT_NE(wal, nullptr);
    ASSERT_TRUE(
        WriteSnapshot(db, vm.SerializeRepository(), 0, snapshot).empty());
    vm.set_journal(wal.get());

    // Batch 1, then a snapshot covering it: checkpoint + truncate, the
    // service's housekeeping sequence.
    ASSERT_TRUE(vm.Update("parts", {Value("P1")}, {"price"}, {Value(11.0)}));
    ASSERT_TRUE(vm.Insert("parts", {Value("P9"), Value(90.0)}));
    vm.Refresh();
    const uint64_t covered = wal->last_lsn();
    ASSERT_TRUE(
        WriteSnapshot(db, vm.SerializeRepository(), covered, snapshot)
            .empty());
    wal->JournalCheckpoint(covered, snapshot);
    wal->TruncateBefore(covered);

    // Batches 2 and 3 land in fresh segments.
    ASSERT_TRUE(vm.Insert("devices_parts", {Value("D2"), Value("P2")}));
    ASSERT_TRUE(vm.Update("parts", {Value("P2")}, {"price"}, {Value(25.0)}));
    vm.Refresh();
    ASSERT_TRUE(vm.Delete("devices_parts", {Value("D1"), Value("P1")}));
    ASSERT_TRUE(vm.Update("parts", {Value("P1")}, {"price"}, {Value(12.0)}));
    vm.Refresh();

    vm.set_journal(nullptr);
    wal->Sync();
    ASSERT_GE(wal->Segments().size(), 2u);
    wal.reset();
  }

  ASSERT_TRUE(IsDirectory(wal_dir));
  Database db2;
  ViewManager vm2(&db2);
  const RecoverResult result = Recover(&db2, &vm2, snapshot, wal_dir);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(result.wal_truncated);
  EXPECT_EQ(result.batches_applied, 2u);  // batch 1 lives in the snapshot
  ExpectViewMatchesRecompute(&db2, RunningExampleSpjPlan(db2), "v",
                             "recovered across segment seams");
}

}  // namespace
}  // namespace idivm
