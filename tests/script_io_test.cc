// Tests for ∆-script repository persistence: expressions, plans and whole
// compiled views round-trip through the textual form, and a reloaded script
// maintains the view exactly like the original.

#include "gtest/gtest.h"
#include "src/core/maintainer.h"
#include "src/core/modification_log.h"
#include "src/core/script_io.h"
#include "src/workload/bsma.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

TEST(ScriptIoTest, ExprRoundTripThroughPlan) {
  const ExprPtr expr =
      And(Gt(Add(Col("a"), Mul(Col("b"), Lit(Value(2.5)))),
             Lit(Value(int64_t{10}))),
          Or(Eq(Col("s"), Lit(Value("x\"y\\z"))),
             Expr::Function("isnull", {Lit(Value::Null())})));
  const std::string text = SerializeExpr(expr);
  // Round-trip via a plan wrapper (ReadExpr is exercised through plans).
  Database db;
  db.CreateTable("t", Schema({{"a", DataType::kDouble},
                              {"b", DataType::kDouble},
                              {"s", DataType::kString}}),
                 {"a"});
  const PlanPtr plan = PlanNode::Select(PlanNode::Scan("t"), expr);
  const std::string plan_text = SerializePlan(plan);
  EXPECT_NE(plan_text.find(text), std::string::npos);
}

TEST(ScriptIoTest, PlanSerializationShapes) {
  Database db;
  testing::LoadRunningExample(&db);
  const PlanPtr plan = testing::RunningExampleAggPlan(db);
  const std::string text = SerializePlan(plan);
  EXPECT_NE(text.find("(agg"), std::string::npos);
  EXPECT_NE(text.find("(scan \"parts\")"), std::string::npos);
  EXPECT_NE(text.find("(join"), std::string::npos);
}

class ScriptIoRoundTrip : public ::testing::Test {
 protected:
  ScriptIoRoundTrip() { testing::LoadRunningExample(&db_); }
  Database db_;
};

TEST_F(ScriptIoRoundTrip, SpjViewMaintainsIdentically) {
  CompiledView original =
      CompileView("v", testing::RunningExampleSpjPlan(db_), db_);
  const std::string text = SerializeCompiledView(original);

  const LoadResult loaded = LoadCompiledView(text, db_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.view.view_name, "v");
  EXPECT_EQ(loaded.view.view_ids, original.view_ids);
  EXPECT_EQ(loaded.view.script.steps.size(), original.script.steps.size());
  EXPECT_EQ(loaded.view.input_bindings.size(),
            original.input_bindings.size());

  // Maintain through the RELOADED script.
  Maintainer m(&db_, loaded.view);
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(11.0)}));
  EXPECT_TRUE(logger.Insert("parts", {Value("P4"), Value(9.0)}));
  EXPECT_TRUE(logger.Insert("devices_parts", {Value("D2"), Value("P4")}));
  EXPECT_TRUE(logger.Update("devices", {Value("D3")}, {"category"}, {Value("phone")}));
  m.Maintain(logger.NetChanges());
  testing::ExpectViewMatchesRecompute(&db_, loaded.view.plan, "v");
}

TEST_F(ScriptIoRoundTrip, AggregateViewWithCacheAndNativeSteps) {
  CompiledView original =
      CompileView("vp", testing::RunningExampleAggPlan(db_), db_);
  const std::string text = SerializeCompiledView(original);
  const LoadResult loaded = LoadCompiledView(text, db_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(loaded.view.cache_tables, original.cache_tables);

  Maintainer m(&db_, loaded.view);
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(13.0)}));
  EXPECT_TRUE(logger.Delete("devices_parts", {Value("D1"), Value("P2")}));
  m.Maintain(logger.NetChanges());
  testing::ExpectViewMatchesRecompute(&db_, loaded.view.plan, "vp");
}

TEST_F(ScriptIoRoundTrip, SecondSerializationIsStable) {
  CompiledView original =
      CompileView("vp", testing::RunningExampleAggPlan(db_), db_);
  const std::string once = SerializeCompiledView(original);
  const LoadResult loaded = LoadCompiledView(once, db_);
  ASSERT_TRUE(loaded.ok) << loaded.error;
  EXPECT_EQ(SerializeCompiledView(loaded.view), once);
}

TEST(ScriptIoBsmaTest, EveryCompiledViewIsASerializationFixedPoint) {
  // serialize → parse → serialize must be the identity on the textual form
  // for every BSMA view of Fig. 9b — the repository a snapshot embeds has to
  // survive arbitrarily many save/recover cycles byte-identically.
  Database db;
  BsmaConfig config;
  config.users = 20;
  config.friends_per_user = 3;
  BsmaWorkload workload(&db, config);
  for (const std::string& view : BsmaWorkload::ViewNames()) {
    SCOPED_TRACE(view);
    CompiledView original = CompileView(view, workload.ViewPlan(view), db);
    const std::string once = SerializeCompiledView(original);
    const LoadResult loaded = LoadCompiledView(once, db);
    ASSERT_TRUE(loaded.ok) << view << ": " << loaded.error;
    const std::string twice = SerializeCompiledView(loaded.view);
    EXPECT_EQ(twice, once) << view;
  }
}

TEST_F(ScriptIoRoundTrip, ErrorsReported) {
  EXPECT_FALSE(LoadCompiledView("garbage", db_).ok);
  EXPECT_NE(LoadCompiledView("(compiled-view 99", db_).error.find("version"),
            std::string::npos);
  // Missing materialization: the view table does not exist.
  Database empty;
  testing::LoadRunningExample(&empty);
  CompiledView original =
      CompileView("v", testing::RunningExampleSpjPlan(db_), db_);
  const LoadResult loaded =
      LoadCompiledView(SerializeCompiledView(original), empty);
  EXPECT_FALSE(loaded.ok);
  EXPECT_NE(loaded.error.find("materialize"), std::string::npos);
}

}  // namespace
}  // namespace idivm
