// End-to-end idIVM tests: compile a view, modify the base tables, run the
// ∆-script, and check the maintained view equals recomputation — the golden
// invariant — for the paper's running example (Figs. 1, 2, 5, 7) and the
// basic modification mixes.

#include "gtest/gtest.h"
#include "src/core/compose.h"
#include "src/core/maintainer.h"
#include "src/core/modification_log.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

using ::idivm::testing::ExpectViewMatchesRecompute;
using ::idivm::testing::LoadRunningExample;
using ::idivm::testing::RunningExampleAggPlan;
using ::idivm::testing::RunningExampleSpjPlan;

class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override { LoadRunningExample(&db_); }

  Maintainer CompileSpj() {
    return Maintainer(&db_, CompileView("v", RunningExampleSpjPlan(db_),
                                        db_));
  }
  Maintainer CompileAgg() {
    return Maintainer(&db_, CompileView("vp", RunningExampleAggPlan(db_),
                                        db_));
  }

  void MaintainAndCheck(Maintainer& maintainer, ModificationLogger& logger,
                        const PlanPtr& plan, const std::string& view) {
    maintainer.Maintain(logger.NetChanges());
    logger.Clear();
    ExpectViewMatchesRecompute(&db_, plan, view);
  }

  Database db_;
};

TEST_F(EndToEndTest, InitialMaterializationMatchesRecompute) {
  Maintainer m = CompileSpj();
  ExpectViewMatchesRecompute(&db_, m.view().plan, "v");
  EXPECT_EQ(db_.GetTable("v").size(), 3u);  // Fig. 2 initial V
}

TEST_F(EndToEndTest, PriceUpdatePropagates) {
  // The Example 1.1 change: P1's price 10 -> 11 updates two view tuples.
  Maintainer m = CompileSpj();
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(11.0)}));
  const MaintainResult result = m.Maintain(logger.NetChanges());
  ExpectViewMatchesRecompute(&db_, m.view().plan, "v");
  EXPECT_EQ(result.rows_touched, 2);  // both P1 tuples
}

TEST_F(EndToEndTest, OverestimatedUpdateIsDummy) {
  // P3 appears in no device: its update produces a dummy i-diff tuple
  // (Section 1's overestimation example) but a correct view.
  Maintainer m = CompileSpj();
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("parts", {Value("P3")}, {"price"}, {Value(25.0)}));
  const MaintainResult result = m.Maintain(logger.NetChanges());
  ExpectViewMatchesRecompute(&db_, m.view().plan, "v");
  EXPECT_EQ(result.rows_touched, 0);
  EXPECT_GE(result.dummy_tuples, 1);
}

TEST_F(EndToEndTest, InsertsPropagate) {
  Maintainer m = CompileSpj();
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Insert("parts", {Value("P4"), Value(30.0)}));
  EXPECT_TRUE(logger.Insert("devices_parts", {Value("D1"), Value("P4")}));
  EXPECT_TRUE(logger.Insert("devices_parts", {Value("D3"), Value("P4")}));  // tablet: out
  MaintainAndCheck(m, logger, m.view().plan, "v");
  EXPECT_EQ(db_.GetTable("v").size(), 4u);
}

TEST_F(EndToEndTest, DeletesPropagate) {
  Maintainer m = CompileSpj();
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Delete("devices_parts", {Value("D2"), Value("P1")}));
  MaintainAndCheck(m, logger, m.view().plan, "v");
  EXPECT_EQ(db_.GetTable("v").size(), 2u);
}

TEST_F(EndToEndTest, SelectionFlipInsertsAndDeletes) {
  // Re-categorizing a device moves its tuples in and out of the view.
  Maintainer m = CompileSpj();
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("devices", {Value("D3")}, {"category"}, {Value("phone")}));
  EXPECT_TRUE(logger.Update("devices", {Value("D2")}, {"category"}, {Value("tablet")}));
  MaintainAndCheck(m, logger, m.view().plan, "v");
}

TEST_F(EndToEndTest, AggregateViewUpdate) {
  // Fig. 7's ∆-script: the price update flows through the cache into the
  // aggregate view.
  Maintainer m = CompileAgg();
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(11.0)}));
  MaintainAndCheck(m, logger, m.view().plan, "vp");
  // D1: P1(11) + P2(20) = 31; D2: P1(11) = 11.
  const Relation view = db_.GetTable("vp").SnapshotUncounted().Sorted();
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view.rows()[0][1].NumericAsDouble(), 31.0);
  EXPECT_EQ(view.rows()[1][1].NumericAsDouble(), 11.0);
}

TEST_F(EndToEndTest, AggregateGroupCreationAndDeletion) {
  Maintainer m = CompileAgg();
  ModificationLogger logger(&db_);
  // D3 becomes a phone: group D3 appears.
  EXPECT_TRUE(logger.Update("devices", {Value("D3")}, {"category"}, {Value("phone")}));
  MaintainAndCheck(m, logger, m.view().plan, "vp");
  EXPECT_EQ(db_.GetTable("vp").size(), 3u);
  // Delete all of D1's links: group D1 disappears.
  EXPECT_TRUE(logger.Delete("devices_parts", {Value("D1"), Value("P1")}));
  EXPECT_TRUE(logger.Delete("devices_parts", {Value("D1"), Value("P2")}));
  MaintainAndCheck(m, logger, m.view().plan, "vp");
  EXPECT_EQ(db_.GetTable("vp").size(), 2u);
}

TEST_F(EndToEndTest, MixedBatchAcrossTables) {
  Maintainer m = CompileAgg();
  ModificationLogger logger(&db_);
  EXPECT_TRUE(logger.Update("parts", {Value("P2")}, {"price"}, {Value(22.0)}));
  EXPECT_TRUE(logger.Insert("parts", {Value("P4"), Value(5.0)}));
  EXPECT_TRUE(logger.Insert("devices_parts", {Value("D2"), Value("P4")}));
  EXPECT_TRUE(logger.Delete("devices_parts", {Value("D1"), Value("P1")}));
  EXPECT_TRUE(logger.Update("devices", {Value("D2")}, {"category"}, {Value("tablet")}));
  MaintainAndCheck(m, logger, m.view().plan, "vp");
}

TEST_F(EndToEndTest, MultipleRoundsStayConsistent) {
  Maintainer m = CompileAgg();
  ModificationLogger logger(&db_);
  for (int round = 0; round < 5; ++round) {
    EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"},
                  {Value(10.0 + round)}));
    EXPECT_TRUE(logger.Update("parts", {Value("P2")}, {"price"},
                  {Value(20.0 - round)}));
    MaintainAndCheck(m, logger, m.view().plan, "vp");
  }
}

TEST_F(EndToEndTest, CompactedNoOpProducesNoChanges) {
  Maintainer m = CompileSpj();
  ModificationLogger logger(&db_);
  // Update and revert within one batch: the net change is empty.
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(99.0)}));
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(10.0)}));
  const MaintainResult result = m.Maintain(logger.NetChanges());
  EXPECT_EQ(result.rows_touched, 0);
  ExpectViewMatchesRecompute(&db_, m.view().plan, "v");
}

TEST_F(EndToEndTest, DeltaScriptPrints) {
  Maintainer m = CompileAgg();
  const std::string script = m.view().script.ToString();
  EXPECT_NE(script.find("APPLY"), std::string::npos);
  EXPECT_NE(script.find("γ-MAINTAIN"), std::string::npos);
  const std::string dag = m.view().dag.ToString();
  EXPECT_NE(dag.find("blocking"), std::string::npos);
}

}  // namespace
}  // namespace idivm
