// Unit tests for algebra plans: construction, schema inference, natural-join
// desugaring, helpers.

#include "gtest/gtest.h"
#include "src/algebra/plan.h"
#include "src/algebra/plan_printer.h"

namespace idivm {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  PlanTest() {
    db_.CreateTable("r", Schema({{"rid", DataType::kInt64},
                                 {"k", DataType::kInt64},
                                 {"v", DataType::kDouble}}),
                    {"rid"});
    db_.CreateTable("s", Schema({{"sid", DataType::kInt64},
                                 {"k", DataType::kInt64},
                                 {"w", DataType::kString}}),
                    {"sid"});
  }
  Database db_;
};

TEST_F(PlanTest, ScanSchema) {
  EXPECT_EQ(InferSchema(PlanNode::Scan("r"), db_).ColumnNames(),
            (std::vector<std::string>{"rid", "k", "v"}));
}

TEST_F(PlanTest, SelectKeepsSchema) {
  const PlanPtr p = PlanNode::Select(PlanNode::Scan("r"),
                                     Gt(Col("v"), Lit(Value(1.0))));
  EXPECT_EQ(InferSchema(p, db_).num_columns(), 3u);
}

TEST_F(PlanTest, SelectRejectsUnknownColumn) {
  const PlanPtr p = PlanNode::Select(PlanNode::Scan("r"),
                                     Gt(Col("zzz"), Lit(Value(1.0))));
  EXPECT_DEATH(InferSchema(p, db_), "unknown column");
}

TEST_F(PlanTest, ProjectTypes) {
  const PlanPtr p = PlanNode::Project(
      PlanNode::Scan("r"),
      {{Col("rid"), "rid"},
       {Add(Col("rid"), Lit(Value(int64_t{1}))), "next"},
       {Div(Col("v"), Lit(Value(2.0))), "half"},
       {Gt(Col("v"), Lit(Value(0.0))), "flag"}});
  const Schema s = InferSchema(p, db_);
  EXPECT_EQ(s.column(1).type, DataType::kInt64);   // int + int
  EXPECT_EQ(s.column(2).type, DataType::kDouble);  // division
  EXPECT_EQ(s.column(3).type, DataType::kInt64);   // boolean
}

TEST_F(PlanTest, JoinConcatenatesAndRejectsCollisions) {
  const PlanPtr renamed = PlanNode::Project(
      PlanNode::Scan("s"),
      {{Col("sid"), "sid"}, {Col("k"), "sk"}, {Col("w"), "w"}});
  const PlanPtr join =
      PlanNode::Join(PlanNode::Scan("r"), renamed, Eq(Col("k"), Col("sk")));
  EXPECT_EQ(InferSchema(join, db_).num_columns(), 6u);
  // Direct join collides on "k".
  const PlanPtr bad =
      PlanNode::Join(PlanNode::Scan("r"), PlanNode::Scan("s"),
                     Eq(Col("rid"), Col("sid")));
  EXPECT_DEATH(InferSchema(bad, db_), "duplicate column");
}

TEST_F(PlanTest, SemiJoinKeepsLeftSchema) {
  const PlanPtr renamed = PlanNode::Project(
      PlanNode::Scan("s"), {{Col("sid"), "sid"}, {Col("k"), "sk"}});
  const PlanPtr semi = PlanNode::SemiJoin(PlanNode::Scan("r"), renamed,
                                          Eq(Col("k"), Col("sk")));
  EXPECT_EQ(InferSchema(semi, db_).ColumnNames(),
            (std::vector<std::string>{"rid", "k", "v"}));
}

TEST_F(PlanTest, UnionAllAddsBranchColumn) {
  const PlanPtr left = PlanNode::Project(PlanNode::Scan("r"),
                                         {{Col("rid"), "id"}});
  const PlanPtr right = PlanNode::Project(PlanNode::Scan("s"),
                                          {{Col("sid"), "id"}});
  const PlanPtr u = PlanNode::UnionAll(left, right, "b");
  EXPECT_EQ(InferSchema(u, db_).ColumnNames(),
            (std::vector<std::string>{"id", "b"}));
}

TEST_F(PlanTest, AggregateSchema) {
  const PlanPtr agg = PlanNode::Aggregate(
      PlanNode::Scan("r"), {"k"},
      {{AggFunc::kSum, Col("v"), "total"},
       {AggFunc::kCount, nullptr, "n"},
       {AggFunc::kAvg, Col("v"), "mean"}});
  const Schema s = InferSchema(agg, db_);
  EXPECT_EQ(s.ColumnNames(),
            (std::vector<std::string>{"k", "total", "n", "mean"}));
  EXPECT_EQ(s.column(1).type, DataType::kDouble);
  EXPECT_EQ(s.column(2).type, DataType::kInt64);
  EXPECT_EQ(s.column(3).type, DataType::kDouble);
}

TEST_F(PlanTest, NaturalJoinSharesColumnsOnce) {
  const PlanPtr nj =
      NaturalJoin(PlanNode::Scan("r"), PlanNode::Scan("s"), db_);
  EXPECT_EQ(InferSchema(nj, db_).ColumnNames(),
            (std::vector<std::string>{"rid", "k", "v", "sid", "w"}));
}

TEST_F(PlanTest, CollectScansAndTransient) {
  const PlanPtr nj =
      NaturalJoin(PlanNode::Scan("r"), PlanNode::Scan("s"), db_);
  EXPECT_EQ(CollectScans(nj).size(), 2u);
  EXPECT_FALSE(IsTransientOnly(nj));
  const PlanPtr ref = PlanNode::RelationRef(
      "d", Schema({{"x", DataType::kInt64}}));
  EXPECT_TRUE(IsTransientOnly(PlanNode::Select(ref, Col("x"))));
  EXPECT_TRUE(IsTransientOnly(PlanNode::Materialize(nj)));
}

TEST_F(PlanTest, PrinterShowsStructure) {
  const PlanPtr p = PlanNode::Aggregate(
      PlanNode::Select(PlanNode::Scan("r"), Gt(Col("v"), Lit(Value(1.0)))),
      {"k"}, {{AggFunc::kSum, Col("v"), "t"}});
  const std::string one_line = PlanToString(p);
  EXPECT_NE(one_line.find("γ"), std::string::npos);
  EXPECT_NE(one_line.find("SCAN r"), std::string::npos);
  const std::string tree = PlanToTreeString(p);
  EXPECT_NE(tree.find("σ"), std::string::npos);
}

}  // namespace
}  // namespace idivm
