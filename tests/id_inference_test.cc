// Unit tests for Pass 1 — ID inference (Table 1) and automatic projection
// extension.

#include "gtest/gtest.h"
#include "src/core/id_inference.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

class IdInferenceTest : public ::testing::Test {
 protected:
  IdInferenceTest() { testing::LoadRunningExample(&db_); }
  Database db_;
};

TEST_F(IdInferenceTest, ScanKeysAreIds) {
  const IdAnnotatedPlan a = InferIds(PlanNode::Scan("devices_parts"), db_);
  EXPECT_EQ(a.IdsOf(a.plan.get()),
            (std::vector<std::string>{"did", "pid"}));
}

TEST_F(IdInferenceTest, SelectionPreservesIds) {
  const PlanPtr p = PlanNode::Select(
      PlanNode::Scan("parts"), Gt(Col("price"), Lit(Value(5.0))));
  const IdAnnotatedPlan a = InferIds(p, db_);
  EXPECT_EQ(a.IdsOf(a.plan.get()), (std::vector<std::string>{"pid"}));
}

TEST_F(IdInferenceTest, ProjectionExtendedWithMissingIds) {
  // π_price drops the key: Pass 1 must extend the plan ("idIVM
  // automatically extends the plan to include the required ID attributes").
  const PlanPtr p = PlanNode::Project(PlanNode::Scan("parts"),
                                      {{Col("price"), "price"}});
  const IdAnnotatedPlan a = InferIds(p, db_);
  const Schema schema = InferSchema(a.plan, db_);
  EXPECT_TRUE(schema.HasColumn("pid"));
  EXPECT_EQ(a.IdsOf(a.plan.get()), (std::vector<std::string>{"pid"}));
}

TEST_F(IdInferenceTest, ProjectionRenamedIdTracked) {
  const PlanPtr p = PlanNode::Project(
      PlanNode::Scan("parts"),
      {{Col("pid"), "part"}, {Col("price"), "price"}});
  const IdAnnotatedPlan a = InferIds(p, db_);
  EXPECT_EQ(a.IdsOf(a.plan.get()), (std::vector<std::string>{"part"}));
  // No extension needed: schema unchanged.
  EXPECT_EQ(InferSchema(a.plan, db_).num_columns(), 2u);
}

TEST_F(IdInferenceTest, RunningExampleViewIds) {
  // The Example 2.1 result: V has IDs {did, pid} despite three base tables.
  const IdAnnotatedPlan a =
      InferIds(testing::RunningExampleSpjPlan(db_), db_);
  const std::vector<std::string> ids = a.IdsOf(a.plan.get());
  EXPECT_EQ(std::set<std::string>(ids.begin(), ids.end()),
            (std::set<std::string>{"did", "pid"}));
}

TEST_F(IdInferenceTest, AggregateIdsAreGroupBy) {
  const IdAnnotatedPlan a =
      InferIds(testing::RunningExampleAggPlan(db_), db_);
  EXPECT_EQ(a.IdsOf(a.plan.get()), (std::vector<std::string>{"did"}));
}

TEST_F(IdInferenceTest, SemiAndAntiSemiKeepLeftIds) {
  const PlanPtr renamed = PlanNode::Project(
      PlanNode::Scan("devices"),
      {{Col("did"), "ddid"}, {Col("category"), "category"}});
  const PlanPtr anti = PlanNode::AntiSemiJoin(
      PlanNode::Scan("devices_parts"), renamed, Eq(Col("did"), Col("ddid")));
  const IdAnnotatedPlan a = InferIds(anti, db_);
  EXPECT_EQ(a.IdsOf(a.plan.get()),
            (std::vector<std::string>{"did", "pid"}));
}

TEST_F(IdInferenceTest, UnionAllAddsBranchToIds) {
  const PlanPtr left = PlanNode::Project(PlanNode::Scan("parts"),
                                         {{Col("pid"), "pid"}});
  const PlanPtr u = PlanNode::UnionAll(left, left, "b");
  const IdAnnotatedPlan a = InferIds(u, db_);
  EXPECT_EQ(a.IdsOf(a.plan.get()), (std::vector<std::string>{"pid", "b"}));
}

TEST_F(IdInferenceTest, EquiJoinDeduplicatesKeyComponents) {
  // Natural-join style: the right key equated to a left column is not
  // duplicated in the output ID.
  const PlanPtr renamed = PlanNode::Project(
      PlanNode::Scan("parts"),
      {{Col("pid"), "ppid"}, {Col("price"), "price"}});
  const PlanPtr join = PlanNode::Join(PlanNode::Scan("devices_parts"),
                                      renamed, Eq(Col("pid"), Col("ppid")));
  const IdAnnotatedPlan a = InferIds(join, db_);
  EXPECT_EQ(a.IdsOf(a.plan.get()),
            (std::vector<std::string>{"did", "pid"}));
}

TEST_F(IdInferenceTest, ThetaJoinUnionsIds) {
  const PlanPtr renamed = PlanNode::Project(
      PlanNode::Scan("parts"),
      {{Col("pid"), "ppid"}, {Col("price"), "price"}});
  const PlanPtr join =
      PlanNode::Join(PlanNode::Scan("devices_parts"), renamed,
                     Lt(Col("pid"), Col("ppid")));
  const IdAnnotatedPlan a = InferIds(join, db_);
  EXPECT_EQ(a.IdsOf(a.plan.get()),
            (std::vector<std::string>{"did", "pid", "ppid"}));
}

}  // namespace
}  // namespace idivm
