// Unit tests for Pass 4 — semantic minimization (Fig. 8 rewrites and the
// composition-generalized diff push-down), checking both that rewrites fire
// and that they preserve semantics.

#include "gtest/gtest.h"
#include "src/algebra/evaluator.h"
#include "src/algebra/plan_printer.h"
#include "src/core/compose.h"
#include "src/core/maintainer.h"
#include "src/core/minimize.h"
#include "src/core/modification_log.h"
#include "src/core/rules.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

class MinimizeTest : public ::testing::Test {
 protected:
  MinimizeTest() {
    table_ = &db_.CreateTable("r", Schema({{"id", DataType::kInt64},
                                           {"a", DataType::kDouble},
                                           {"b", DataType::kDouble}}),
                              {"id"});
    table_->BulkLoadUncounted(Relation(
        table_->schema(),
        {{Value(int64_t{1}), Value(1.0), Value(10.0)},
         {Value(int64_t{2}), Value(2.0), Value(20.0)},
         {Value(int64_t{3}), Value(3.0), Value(30.0)}}));
    update_schema_ = std::make_unique<DiffSchema>(
        DiffType::kUpdate, "r", table_->schema(),
        std::vector<std::string>{"id"}, std::vector<std::string>{"a", "b"},
        std::vector<std::string>{"a"});
    delete_schema_ = std::make_unique<DiffSchema>(
        DiffType::kDelete, "r", table_->schema(),
        std::vector<std::string>{"id"}, std::vector<std::string>{"a", "b"},
        std::vector<std::string>{});
    script_.diff_registry.emplace_back("du", *update_schema_);
    script_.diff_registry.emplace_back("dd", *delete_schema_);
  }

  Database db_;
  Table* table_;
  std::unique_ptr<DiffSchema> update_schema_;
  std::unique_ptr<DiffSchema> delete_schema_;
  DeltaScript script_;
};

TEST_F(MinimizeTest, SemiJoinWithOwnUpdateDiffEliminated) {
  // Scan(r) ⋉_id ∆u_r → plain post rows of the diff (zero accesses).
  const PlanPtr plan =
      SemiJoinInputWithDiff(PlanNode::Scan("r"), "du", *update_schema_);
  MinimizeStats stats;
  const PlanPtr minimized = MinimizePlan(plan, script_, db_, &stats);
  EXPECT_EQ(stats.rewrites_applied, 1);
  EXPECT_TRUE(IsTransientOnly(minimized));

  // Semantics preserved: evaluate both against a diff instance.
  Relation diff(update_schema_->relation_schema());
  diff.Append({Value(int64_t{2}), Value(2.0), Value(20.0), Value(9.0)});
  // Make the table's post state consistent with the diff (C3).
  table_->UpdateByKey({Value(int64_t{2})}, {1}, {Value(9.0)});
  EvalContext ctx;
  ctx.db = &db_;
  ctx.transient["du"] = &diff;
  const Relation original = Evaluate(plan, ctx);
  const Relation rewritten = Evaluate(minimized, ctx);
  EXPECT_TRUE(original.BagEquals(rewritten))
      << original.ToString() << rewritten.ToString();
  // And the rewritten form touches no stored data.
  db_.stats().Reset();
  Evaluate(minimized, ctx);
  EXPECT_EQ(db_.stats().TotalAccesses(), 0);
}

TEST_F(MinimizeTest, SemiJoinWithOwnDeleteDiffIsEmpty) {
  // C2: Scan(r) ⋉_id ∆-_r → ∅.
  const PlanPtr plan =
      SemiJoinInputWithDiff(PlanNode::Scan("r"), "dd", *delete_schema_);
  MinimizeStats stats;
  const PlanPtr minimized = MinimizePlan(plan, script_, db_, &stats);
  EXPECT_EQ(stats.rewrites_applied, 1);
  EvalContext ctx;
  ctx.db = &db_;
  Relation diff(delete_schema_->relation_schema());
  ctx.transient["dd"] = &diff;
  EXPECT_TRUE(Evaluate(minimized, ctx).empty());
}

TEST_F(MinimizeTest, JoinWithOwnDiffEliminated) {
  const PlanPtr plan =
      JoinInputWithDiff(PlanNode::Scan("r"), "du", *update_schema_);
  MinimizeStats stats;
  const PlanPtr minimized = MinimizePlan(plan, script_, db_, &stats);
  EXPECT_EQ(stats.rewrites_applied, 1);
  EXPECT_TRUE(IsTransientOnly(minimized));
  EXPECT_EQ(InferSchema(minimized, db_).ColumnNames(),
            InferSchema(plan, db_).ColumnNames());
}

TEST_F(MinimizeTest, SelectionOnScanFoldedIntoDiff) {
  // σ_b>15(Scan r) ⋉ ∆u → σ over the diff's reconstructed rows.
  const PlanPtr filtered = PlanNode::Select(
      PlanNode::Scan("r"), Gt(Col("b"), Lit(Value(15.0))));
  const PlanPtr plan = SemiJoinInputWithDiff(filtered, "du",
                                             *update_schema_);
  MinimizeStats stats;
  const PlanPtr minimized = MinimizePlan(plan, script_, db_, &stats);
  EXPECT_EQ(stats.rewrites_applied, 1);
  EXPECT_TRUE(IsTransientOnly(minimized));

  Relation diff(update_schema_->relation_schema());
  diff.Append({Value(int64_t{1}), Value(1.0), Value(10.0), Value(5.0)});
  diff.Append({Value(int64_t{3}), Value(3.0), Value(30.0), Value(7.0)});
  table_->UpdateByKey({Value(int64_t{1})}, {1}, {Value(5.0)});
  table_->UpdateByKey({Value(int64_t{3})}, {1}, {Value(7.0)});
  EvalContext ctx;
  ctx.db = &db_;
  ctx.transient["du"] = &diff;
  const Relation out = Evaluate(minimized, ctx);
  ASSERT_EQ(out.size(), 1u);  // only id=3 has b>15
  EXPECT_EQ(out.rows()[0][0].AsInt64(), 3);
}

TEST_F(MinimizeTest, DiffPushdownThroughJoin) {
  // (r ⋈ s) ⋈_id ∆u_r: the minimizer replaces Scan(r) with the diff's rows.
  db_.CreateTable("s", Schema({{"sid", DataType::kInt64},
                               {"w", DataType::kDouble}}),
                  {"sid"});
  const PlanPtr renamed = PlanNode::Project(
      PlanNode::Scan("r"),
      {{Col("id"), "id"}, {Col("a"), "a"}, {Col("b"), "b"}});
  const PlanPtr subview = PlanNode::Join(
      renamed, PlanNode::Scan("s"), Eq(Col("b"), Col("sid")));
  const PlanPtr plan = JoinInputWithDiff(subview, "du", *update_schema_);
  MinimizeStats stats;
  const PlanPtr minimized = MinimizePlan(plan, script_, db_, &stats);
  EXPECT_GE(stats.rewrites_applied, 1);
  // Scan(r) is gone; Scan(s) stays (the probe target).
  const std::string rendered = PlanToString(minimized);
  EXPECT_EQ(rendered.find("SCAN r,"), std::string::npos);
  EXPECT_NE(rendered.find("SCAN s"), std::string::npos);
}

TEST_F(MinimizeTest, UnrelatedJoinUntouched) {
  // A diff joined with a DIFFERENT table must not be rewritten.
  db_.CreateTable("other", Schema({{"id", DataType::kInt64},
                                   {"x", DataType::kDouble}}),
                  {"id"});
  const PlanPtr plan =
      JoinInputWithDiff(PlanNode::Scan("other"), "du", *update_schema_);
  MinimizeStats stats;
  MinimizePlan(plan, script_, db_, &stats);
  EXPECT_EQ(stats.rewrites_applied, 0);
}

TEST_F(MinimizeTest, MinimizedCompilationStaysCorrect) {
  // End-to-end: general branches + minimization == recomputation.
  Database db;
  testing::LoadRunningExample(&db);
  CompilerOptions options;
  options.rules.prefer_diff_only_branches = false;
  options.minimize = true;
  Maintainer m(&db, CompileView("v", testing::RunningExampleSpjPlan(db), db,
                                options));
  ModificationLogger logger(&db);
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(13.0)}));
  EXPECT_TRUE(logger.Update("devices", {Value("D2")}, {"category"}, {Value("tablet")}));
  m.Maintain(logger.NetChanges());
  testing::ExpectViewMatchesRecompute(&db, m.view().plan, "v");
}

}  // namespace
}  // namespace idivm
