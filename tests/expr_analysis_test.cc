// Unit tests for expression analysis: referenced columns, conjunct
// splitting, renaming (the __pre/__post retargeting of rules), equi-pair
// extraction.

#include "gtest/gtest.h"
#include "src/expr/analysis.h"

namespace idivm {
namespace {

TEST(AnalysisTest, ReferencedColumns) {
  const ExprPtr e = And(Gt(Add(Col("a"), Col("b")), Lit(Value(1.0))),
                        Eq(Col("c"), Col("a")));
  EXPECT_EQ(ReferencedColumns(e), (std::set<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(ReferencedColumns(nullptr).empty());
}

TEST(AnalysisTest, SplitAndConjoin) {
  const ExprPtr e = And(And(Col("a"), Col("b")), Col("c"));
  const std::vector<ExprPtr> parts = SplitConjuncts(e);
  EXPECT_EQ(parts.size(), 3u);
  // ORs are not split.
  EXPECT_EQ(SplitConjuncts(Or(Col("a"), Col("b"))).size(), 1u);
  // Conjoin round-trips.
  EXPECT_TRUE(ExprEquals(ConjoinAll(parts), e));
  // Empty conjunction is TRUE.
  const ExprPtr truth = ConjoinAll({});
  EXPECT_EQ(truth->literal().AsInt64(), 1);
}

TEST(AnalysisTest, RenameColumns) {
  const ExprPtr e = Gt(Add(Col("price"), Col("tax")), Lit(Value(10.0)));
  const ExprPtr renamed =
      RenameColumns(e, {{"price", "price__post"}});
  EXPECT_EQ(ReferencedColumns(renamed),
            (std::set<std::string>{"price__post", "tax"}));
  // Original untouched.
  EXPECT_EQ(ReferencedColumns(e), (std::set<std::string>{"price", "tax"}));
}

TEST(AnalysisTest, ExtractEquiPairs) {
  const std::set<std::string> left = {"a", "b"};
  const std::set<std::string> right = {"x", "y"};
  std::vector<std::pair<std::string, std::string>> pairs;
  const ExprPtr pred =
      And(And(Eq(Col("a"), Col("x")), Eq(Col("y"), Col("b"))),
          Lt(Col("a"), Col("y")));
  const std::vector<ExprPtr> residual =
      ExtractEquiPairs(pred, left, right, &pairs);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<std::string, std::string>{"a", "x"}));
  EXPECT_EQ(pairs[1], (std::pair<std::string, std::string>{"b", "y"}));
  ASSERT_EQ(residual.size(), 1u);
  EXPECT_EQ(residual[0]->ToString(), "(a < y)");
}

TEST(AnalysisTest, ExtractEquiPairsIgnoresSameSide) {
  std::vector<std::pair<std::string, std::string>> pairs;
  const std::vector<ExprPtr> residual = ExtractEquiPairs(
      Eq(Col("a"), Col("b")), {"a", "b"}, {"x"}, &pairs);
  EXPECT_TRUE(pairs.empty());
  EXPECT_EQ(residual.size(), 1u);
}

TEST(AnalysisTest, ExprEquals) {
  EXPECT_TRUE(ExprEquals(Add(Col("a"), Lit(Value(1.0))),
                         Add(Col("a"), Lit(Value(1.0)))));
  EXPECT_FALSE(ExprEquals(Add(Col("a"), Lit(Value(1.0))),
                          Add(Col("a"), Lit(Value(int64_t{1})))));
  EXPECT_FALSE(ExprEquals(Col("a"), Col("b")));
  EXPECT_FALSE(ExprEquals(Lt(Col("a"), Col("b")), Gt(Col("a"), Col("b"))));
}

}  // namespace
}  // namespace idivm
