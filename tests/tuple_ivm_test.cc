// Tuple-based IVM baseline tests: the D-script path must keep views
// identical to recomputation for SPJ views and root aggregates — the shapes
// of the paper's Section 6 analysis.

#include "gtest/gtest.h"
#include "src/common/rng.h"
#include "src/core/modification_log.h"
#include "src/tivm/tuple_ivm.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

using ::idivm::testing::ExpectViewMatchesRecompute;
using ::idivm::testing::LoadRunningExample;
using ::idivm::testing::RunningExampleAggPlan;
using ::idivm::testing::RunningExampleSpjPlan;

TEST(TupleIvmTest, SpjUpdatePropagates) {
  Database db;
  LoadRunningExample(&db);
  TupleIvm tivm(&db, "v", RunningExampleSpjPlan(db));
  ModificationLogger logger(&db);
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(11.0)}));
  tivm.Maintain(logger.NetChanges());
  ExpectViewMatchesRecompute(&db, RunningExampleSpjPlan(db), "v");
}

TEST(TupleIvmTest, SpjInsertDeleteUpdateMix) {
  Database db;
  LoadRunningExample(&db);
  TupleIvm tivm(&db, "v", RunningExampleSpjPlan(db));
  ModificationLogger logger(&db);
  EXPECT_TRUE(logger.Insert("parts", {Value("P4"), Value(7.0)}));
  EXPECT_TRUE(logger.Insert("devices_parts", {Value("D2"), Value("P4")}));
  EXPECT_TRUE(logger.Delete("devices_parts", {Value("D1"), Value("P2")}));
  EXPECT_TRUE(logger.Update("devices", {Value("D3")}, {"category"}, {Value("phone")}));
  tivm.Maintain(logger.NetChanges());
  ExpectViewMatchesRecompute(&db, RunningExampleSpjPlan(db), "v");
}

TEST(TupleIvmTest, AggregateAdditivePath) {
  Database db;
  LoadRunningExample(&db);
  TupleIvm tivm(&db, "vp", RunningExampleAggPlan(db));
  ModificationLogger logger(&db);
  EXPECT_TRUE(logger.Update("parts", {Value("P1")}, {"price"}, {Value(14.0)}));
  tivm.Maintain(logger.NetChanges());
  ExpectViewMatchesRecompute(&db, RunningExampleAggPlan(db), "vp");
}

TEST(TupleIvmTest, AggregateGroupCreateDelete) {
  Database db;
  LoadRunningExample(&db);
  TupleIvm tivm(&db, "vp", RunningExampleAggPlan(db));
  ModificationLogger logger(&db);
  EXPECT_TRUE(logger.Update("devices", {Value("D3")}, {"category"}, {Value("phone")}));
  tivm.Maintain(logger.NetChanges());
  ExpectViewMatchesRecompute(&db, RunningExampleAggPlan(db), "vp");
  logger.Clear();
  EXPECT_TRUE(logger.Delete("devices_parts", {Value("D2"), Value("P1")}));
  tivm.Maintain(logger.NetChanges());
  ExpectViewMatchesRecompute(&db, RunningExampleAggPlan(db), "vp");
}

// Randomized equivalence over several rounds, SPJ and aggregate roots.
class TupleIvmPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(TupleIvmPropertyTest, MatchesRecompute) {
  const auto& [shape, seed] = GetParam();
  Database db;
  Rng rng(seed * 31 + 5);

  Table& r = db.CreateTable("r",
                            Schema({{"rid", DataType::kInt64},
                                    {"rb", DataType::kInt64},
                                    {"rc", DataType::kDouble}}),
                            {"rid"});
  Relation r_data(r.schema());
  for (int64_t i = 0; i < 30; ++i) {
    r_data.Append({Value(i), Value(rng.UniformInt(0, 5)),
                   Value(static_cast<double>(rng.UniformInt(0, 40)))});
  }
  r.BulkLoadUncounted(r_data);
  Table& s = db.CreateTable(
      "s", Schema({{"sid", DataType::kInt64}, {"se", DataType::kDouble}}),
      {"sid"});
  Relation s_data(s.schema());
  for (int64_t i = 0; i < 6; ++i) {
    s_data.Append({Value(i), Value(static_cast<double>(rng.UniformInt(0, 20)))});
  }
  s.BulkLoadUncounted(s_data);

  PlanPtr plan;
  if (shape == "spj") {
    plan = PlanNode::Select(
        PlanNode::Join(PlanNode::Scan("r"), PlanNode::Scan("s"),
                       Eq(Col("rb"), Col("sid"))),
        Gt(Col("se"), Lit(Value(4.0))));
  } else {
    plan = PlanNode::Aggregate(
        PlanNode::Join(PlanNode::Scan("r"), PlanNode::Scan("s"),
                       Eq(Col("rb"), Col("sid"))),
        {"sid"},
        {{AggFunc::kSum, Col("rc"), "total"}, {AggFunc::kCount, nullptr, "n"}});
  }

  TupleIvm tivm(&db, "v", plan);
  ModificationLogger logger(&db);
  int64_t next_rid = 30;
  for (int round = 0; round < 6; ++round) {
    const int ops = static_cast<int>(rng.UniformInt(2, 8));
    for (int i = 0; i < ops; ++i) {
      switch (rng.UniformInt(0, 4)) {
        case 0:
          EXPECT_TRUE(logger.Insert("r", {Value(next_rid++), Value(rng.UniformInt(0, 5)),
                              Value(static_cast<double>(
                                  rng.UniformInt(0, 40)))}));
          break;
        case 1:  // may miss: the key may already be gone
          (void)logger.Delete("r", {Value(rng.UniformInt(0, next_rid - 1))});
          break;
        case 2:
          (void)logger.Update("r", {Value(rng.UniformInt(0, next_rid - 1))},
                              {"rc"},
                              {Value(static_cast<double>(
                                  rng.UniformInt(0, 40)))});
          break;
        case 3:
          (void)logger.Update("r", {Value(rng.UniformInt(0, next_rid - 1))},
                              {"rb"}, {Value(rng.UniformInt(0, 5))});
          break;
        case 4:
          EXPECT_TRUE(logger.Update("s", {Value(rng.UniformInt(0, 5))}, {"se"},
                        {Value(static_cast<double>(rng.UniformInt(0, 20)))}));
          break;
      }
    }
    tivm.Maintain(logger.NetChanges());
    logger.Clear();
    testing::ExpectViewMatchesRecompute(&db, plan, "v",
                                        shape + " round " +
                                            std::to_string(round));
    if (::testing::Test::HasFailure()) break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TupleIvmPropertyTest,
    ::testing::Combine(::testing::Values("spj", "agg"),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, uint64_t>>&
           info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace idivm
