// Unit tests for i-diff schemas (Section 2) and instances.

#include "gtest/gtest.h"
#include "src/diff/diff_instance.h"
#include "src/diff/diff_schema.h"

namespace idivm {
namespace {

const Schema kTarget({{"pid", DataType::kString},
                      {"price", DataType::kDouble},
                      {"weight", DataType::kDouble}});

TEST(DiffSchemaTest, UpdateLayout) {
  const DiffSchema d(DiffType::kUpdate, "parts", kTarget, {"pid"},
                     {"price", "weight"}, {"price"});
  EXPECT_EQ(d.relation_schema().ColumnNames(),
            (std::vector<std::string>{"pid", "price__pre", "weight__pre",
                                      "price__post"}));
  EXPECT_TRUE(d.HasPre("weight"));
  EXPECT_TRUE(d.HasPost("price"));
  EXPECT_FALSE(d.HasPost("weight"));
  EXPECT_FALSE(d.additive());
}

TEST(DiffSchemaTest, InsertForbidsPre) {
  EXPECT_DEATH(DiffSchema(DiffType::kInsert, "parts", kTarget, {"pid"},
                          {"price"}, {"price", "weight"}),
               "no pre-state");
  const DiffSchema ok(DiffType::kInsert, "parts", kTarget, {"pid"}, {},
                      {"price", "weight"});
  EXPECT_EQ(ok.relation_schema().num_columns(), 3u);
}

TEST(DiffSchemaTest, DeleteForbidsPost) {
  EXPECT_DEATH(DiffSchema(DiffType::kDelete, "parts", kTarget, {"pid"}, {},
                          {"price"}),
               "no post-state");
}

TEST(DiffSchemaTest, AdditiveOnlyForUpdates) {
  EXPECT_DEATH(DiffSchema(DiffType::kInsert, "parts", kTarget, {"pid"}, {},
                          {"price"}, /*additive=*/true),
               "additive");
  const DiffSchema d(DiffType::kUpdate, "parts", kTarget, {"pid"}, {},
                     {"price"}, /*additive=*/true);
  EXPECT_TRUE(d.additive());
  EXPECT_NE(d.ToString().find("+="), std::string::npos);
}

TEST(DiffSchemaTest, StateSuffixHelpers) {
  EXPECT_EQ(PreName("price"), "price__pre");
  EXPECT_EQ(PostName("price"), "price__post");
  EXPECT_EQ(StripStateSuffix("price__pre"), "price");
  EXPECT_EQ(StripStateSuffix("price__post"), "price");
  EXPECT_EQ(StripStateSuffix("price"), "price");
}

TEST(DiffInstanceTest, AppendAndDeduplicate) {
  const DiffSchema d(DiffType::kUpdate, "parts", kTarget, {"pid"}, {},
                     {"price"});
  DiffInstance inst(d);
  inst.Append({Value("P1"), Value(11.0)});
  inst.Append({Value("P2"), Value(22.0)});
  inst.Append({Value("P1"), Value(11.0)});  // duplicate key
  EXPECT_EQ(inst.size(), 3u);
  inst.DeduplicateByIds();
  EXPECT_EQ(inst.size(), 2u);
}

TEST(DiffInstanceDeathTest, DataSchemaMustMatch) {
  const DiffSchema d(DiffType::kUpdate, "parts", kTarget, {"pid"}, {},
                     {"price"});
  Relation wrong(Schema({{"pid", DataType::kString},
                         {"price", DataType::kDouble}}));
  EXPECT_DEATH(DiffInstance(d, wrong), "does not match");
}

TEST(DiffSchemaTest, ToStringShape) {
  const DiffSchema d(DiffType::kUpdate, "parts", kTarget, {"pid"},
                     {"price"}, {"price"});
  const std::string s = d.ToString();
  EXPECT_NE(s.find("∆u_parts"), std::string::npos);
  EXPECT_NE(s.find("pre: price"), std::string::npos);
}

}  // namespace
}  // namespace idivm
