// Unit tests for the plan evaluator: operator semantics, join strategies,
// probe-path costs (the diff-driven loop plan of Section 6), pre-state
// scans and short-circuiting of empty diffs.

#include "gtest/gtest.h"
#include "src/algebra/evaluator.h"

namespace idivm {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest() {
    Table& r = db_.CreateTable("r", Schema({{"rid", DataType::kInt64},
                                            {"k", DataType::kInt64},
                                            {"v", DataType::kDouble}}),
                               {"rid"});
    Relation r_data(r.schema());
    for (int64_t i = 0; i < 12; ++i) {
      r_data.Append({Value(i), Value(i % 4), Value(i * 1.0)});
    }
    r.BulkLoadUncounted(r_data);

    Table& s = db_.CreateTable("s", Schema({{"sid", DataType::kInt64},
                                            {"w", DataType::kString}}),
                               {"sid"});
    Relation s_data(s.schema());
    for (int64_t i = 0; i < 4; ++i) {
      s_data.Append({Value(i), Value(i % 2 == 0 ? "even" : "odd")});
    }
    s.BulkLoadUncounted(s_data);
  }

  Relation Run(const PlanPtr& plan, EvalContext* ctx = nullptr) {
    EvalContext local;
    local.db = &db_;
    return Evaluate(plan, ctx != nullptr ? *ctx : local);
  }

  Database db_;
};

TEST_F(EvaluatorTest, ScanSelectProject) {
  const PlanPtr p = PlanNode::Project(
      PlanNode::Select(PlanNode::Scan("r"), Ge(Col("v"), Lit(Value(8.0)))),
      {{Col("rid"), "rid"}, {Mul(Col("v"), Lit(Value(2.0))), "v2"}});
  const Relation out = Run(p);
  EXPECT_EQ(out.size(), 4u);  // rids 8..11
  EXPECT_DOUBLE_EQ(out.Sorted().rows()[0][1].AsDouble(), 16.0);
}

TEST_F(EvaluatorTest, HashJoin) {
  const PlanPtr p = PlanNode::Join(PlanNode::Scan("r"), PlanNode::Scan("s"),
                                   Eq(Col("k"), Col("sid")));
  EXPECT_EQ(Run(p).size(), 12u);  // every r row matches one s row
}

TEST_F(EvaluatorTest, ThetaJoinNestedLoop) {
  const PlanPtr p = PlanNode::Join(PlanNode::Scan("r"), PlanNode::Scan("s"),
                                   Lt(Col("k"), Col("sid")));
  // k in {0..3}, sid in {0..3}: pairs with k < sid.
  size_t expected = 0;
  for (int k = 0; k < 4; ++k) expected += 3 * (3 - k);
  EXPECT_EQ(Run(p).size(), expected);
}

TEST_F(EvaluatorTest, SemiAndAntiSemiJoinPartition) {
  const PlanPtr sj = PlanNode::SemiJoin(
      PlanNode::Scan("r"),
      PlanNode::Select(PlanNode::Scan("s"), Eq(Col("w"), Lit(Value("even")))),
      Eq(Col("k"), Col("sid")));
  const PlanPtr asj = PlanNode::AntiSemiJoin(
      PlanNode::Scan("r"),
      PlanNode::Select(PlanNode::Scan("s"), Eq(Col("w"), Lit(Value("even")))),
      Eq(Col("k"), Col("sid")));
  const size_t semi = Run(sj).size();
  const size_t anti = Run(asj).size();
  EXPECT_EQ(semi + anti, 12u);
  EXPECT_EQ(semi, 6u);  // k even
}

TEST_F(EvaluatorTest, UnionAllTagsBranches) {
  const PlanPtr left = PlanNode::Project(PlanNode::Scan("s"),
                                         {{Col("sid"), "id"}});
  const PlanPtr u = PlanNode::UnionAll(left, left, "b");
  const Relation out = Run(u);
  EXPECT_EQ(out.size(), 8u);
  int64_t b_sum = 0;
  for (const Row& row : out.rows()) b_sum += row[1].AsInt64();
  EXPECT_EQ(b_sum, 4);
}

TEST_F(EvaluatorTest, AggregateFunctions) {
  const PlanPtr agg = PlanNode::Aggregate(
      PlanNode::Scan("r"), {"k"},
      {{AggFunc::kSum, Col("v"), "total"},
       {AggFunc::kCount, nullptr, "n"},
       {AggFunc::kAvg, Col("v"), "mean"},
       {AggFunc::kMin, Col("v"), "lo"},
       {AggFunc::kMax, Col("v"), "hi"}});
  const Relation out = Run(agg).Sorted();
  ASSERT_EQ(out.size(), 4u);
  // Group k=0: rids 0,4,8 -> v 0,4,8.
  EXPECT_DOUBLE_EQ(out.rows()[0][1].AsDouble(), 12.0);
  EXPECT_EQ(out.rows()[0][2].AsInt64(), 3);
  EXPECT_DOUBLE_EQ(out.rows()[0][3].AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(out.rows()[0][4].AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(out.rows()[0][5].AsDouble(), 8.0);
}

TEST_F(EvaluatorTest, GlobalAggregateOverEmptyInput) {
  const PlanPtr agg = PlanNode::Aggregate(
      PlanNode::Select(PlanNode::Scan("r"), Lt(Col("v"), Lit(Value(-1.0)))),
      {}, {{AggFunc::kCount, nullptr, "n"}, {AggFunc::kSum, Col("v"), "t"}});
  const Relation out = Run(agg);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.rows()[0][0].AsInt64(), 0);
  EXPECT_TRUE(out.rows()[0][1].is_null());
}

TEST_F(EvaluatorTest, AggregateIgnoresNullArgs) {
  Table& t = db_.CreateTable("nullt", Schema({{"id", DataType::kInt64},
                                              {"x", DataType::kDouble}}),
                             {"id"});
  t.BulkLoadUncounted(Relation(
      t.schema(), {{Value(int64_t{1}), Value(2.0)},
                   {Value(int64_t{2}), Value::Null()},
                   {Value(int64_t{3}), Value(4.0)}}));
  const PlanPtr agg = PlanNode::Aggregate(
      PlanNode::Scan("nullt"), {},
      {{AggFunc::kSum, Col("x"), "t"},
       {AggFunc::kCount, Col("x"), "nx"},
       {AggFunc::kCount, nullptr, "n"},
       {AggFunc::kAvg, Col("x"), "m"}});
  const Relation out = Run(agg);
  EXPECT_DOUBLE_EQ(out.rows()[0][0].AsDouble(), 6.0);
  EXPECT_EQ(out.rows()[0][1].AsInt64(), 2);  // count(x) skips NULL
  EXPECT_EQ(out.rows()[0][2].AsInt64(), 3);  // count(*) does not
  EXPECT_DOUBLE_EQ(out.rows()[0][3].AsDouble(), 3.0);
}

TEST_F(EvaluatorTest, TransientDiffDrivenJoinCosts) {
  // Join a 2-row transient diff with r via its index: 1 lookup per distinct
  // key + 1 read per matched row, nothing else (Section 6's diff-driven
  // loop plan; transient reads are free).
  const Schema diff_schema({{"k", DataType::kInt64}});
  Relation diff(diff_schema, {{Value(int64_t{1})}, {Value(int64_t{2})}});
  const PlanPtr p = PlanNode::Join(
      PlanNode::RelationRef("d", diff_schema),
      PlanNode::Project(PlanNode::Scan("r"), {{Col("rid"), "rid"},
                                              {Col("k"), "rk"},
                                              {Col("v"), "v"}}),
      Eq(Col("k"), Col("rk")));
  EvalContext ctx;
  ctx.db = &db_;
  ctx.transient["d"] = &diff;
  db_.stats().Reset();
  const Relation out = Evaluate(p, ctx);
  EXPECT_EQ(out.size(), 6u);  // 3 rows per key
  EXPECT_EQ(db_.stats().index_lookups, 2);
  EXPECT_EQ(db_.stats().tuple_reads, 6);
}

TEST_F(EvaluatorTest, RepeatedKeysProbeOnce) {
  // Duplicate diff keys reuse the probe (the a<1 discussion of Sec. 6.1).
  const Schema diff_schema({{"k", DataType::kInt64}});
  Relation diff(diff_schema, {{Value(int64_t{1})},
                              {Value(int64_t{1})},
                              {Value(int64_t{1})}});
  const PlanPtr p = PlanNode::Join(
      PlanNode::RelationRef("d", diff_schema),
      PlanNode::Project(PlanNode::Scan("r"),
                        {{Col("rid"), "rid"}, {Col("k"), "rk"}}),
      Eq(Col("k"), Col("rk")));
  EvalContext ctx;
  ctx.db = &db_;
  ctx.transient["d"] = &diff;
  db_.stats().Reset();
  EXPECT_EQ(Evaluate(p, ctx).size(), 9u);
  EXPECT_EQ(db_.stats().index_lookups, 1);
  EXPECT_EQ(db_.stats().tuple_reads, 3);
}

TEST_F(EvaluatorTest, EmptyDiffShortCircuits) {
  const Schema diff_schema({{"q", DataType::kInt64}});
  Relation empty(diff_schema);
  // Non-equi join cannot probe; without rows it must not scan r either.
  const PlanPtr p = PlanNode::Join(PlanNode::RelationRef("d", diff_schema),
                                   PlanNode::Scan("r"),
                                   Lt(Col("q"), Col("k")));
  EvalContext ctx;
  ctx.db = &db_;
  ctx.transient["d"] = &empty;
  db_.stats().Reset();
  EXPECT_TRUE(Evaluate(p, ctx).empty());
  EXPECT_EQ(db_.stats().TotalAccesses(), 0);
}

TEST_F(EvaluatorTest, ProbeThroughJoinChain) {
  // Probing Join(r', s) on r-columns chains index lookups (the multi-join
  // diff-driven plan of Fig. 12b).
  const Schema diff_schema({{"rid", DataType::kInt64}});
  Relation diff(diff_schema, {{Value(int64_t{5})}});
  const PlanPtr joined = PlanNode::Join(
      PlanNode::Project(PlanNode::Scan("r"), {{Col("rid"), "rrid"},
                                              {Col("k"), "k"},
                                              {Col("v"), "v"}}),
      PlanNode::Scan("s"), Eq(Col("k"), Col("sid")));
  const PlanPtr p = PlanNode::Join(PlanNode::RelationRef("d", diff_schema),
                                   joined, Eq(Col("rid"), Col("rrid")));
  EvalContext ctx;
  ctx.db = &db_;
  ctx.transient["d"] = &diff;
  db_.stats().Reset();
  const Relation out = Evaluate(p, ctx);
  EXPECT_EQ(out.size(), 1u);
  // r probe (1 lookup + 1 read) then s probe (1 lookup + 1 read).
  EXPECT_EQ(db_.stats().index_lookups, 2);
  EXPECT_EQ(db_.stats().tuple_reads, 2);
}

TEST_F(EvaluatorTest, PreStateScan) {
  // A pre-state override replaces the stored table for kPre scans only.
  Relation pre(db_.GetTable("r").schema());
  pre.Append({Value(int64_t{100}), Value(int64_t{0}), Value(0.0)});
  std::map<std::string, IndexedRelation> pre_state;
  pre_state.emplace("r", IndexedRelation(pre, &db_.stats()));
  EvalContext ctx;
  ctx.db = &db_;
  ctx.pre_state = &pre_state;
  EXPECT_EQ(Evaluate(PlanNode::Scan("r", StateTag::kPre), ctx).size(), 1u);
  EXPECT_EQ(Evaluate(PlanNode::Scan("r", StateTag::kPost), ctx).size(), 12u);
}

TEST_F(EvaluatorTest, IndexedRelationProbeCosts) {
  Relation data(Schema({{"a", DataType::kInt64}, {"b", DataType::kInt64}}));
  for (int64_t i = 0; i < 10; ++i) data.Append({Value(i % 2), Value(i)});
  IndexedRelation rel(data, &db_.stats());
  db_.stats().Reset();
  EXPECT_EQ(rel.Probe({0}, {Value(int64_t{1})}).size(), 5u);
  EXPECT_EQ(db_.stats().index_lookups, 1);
  EXPECT_EQ(db_.stats().tuple_reads, 5);
  db_.stats().Reset();
  EXPECT_EQ(rel.ScanCounted().size(), 10u);
  EXPECT_EQ(db_.stats().tuple_reads, 10);
}

TEST_F(EvaluatorTest, EmptyRefResolvesEmpty) {
  const PlanPtr p = PlanNode::RelationRef(
      "__empty_0", Schema({{"x", DataType::kInt64}}));
  EXPECT_TRUE(Run(p).empty());
}

}  // namespace
}  // namespace idivm
