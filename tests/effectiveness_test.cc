// Unit tests for the Section 2 effectiveness conditions.

#include "gtest/gtest.h"
#include "src/diff/apply.h"
#include "src/diff/effectiveness.h"
#include "src/storage/database.h"

namespace idivm {
namespace {

const Schema kView({{"did", DataType::kString},
                    {"pid", DataType::kString},
                    {"price", DataType::kDouble}});

Relation PostState() {
  return Relation(kView, {{Value("D1"), Value("P1"), Value(11.0)},
                          {Value("D2"), Value("P1"), Value(11.0)},
                          {Value("D1"), Value("P2"), Value(20.0)}});
}

TEST(EffectivenessTest, InsertMustExistInPostState) {
  DiffSchema schema(DiffType::kInsert, "v", kView, {"did", "pid"}, {},
                    {"price"});
  DiffInstance good(schema);
  good.Append({Value("D1"), Value("P2"), Value(20.0)});
  EXPECT_TRUE(IsEffective(good, PostState()));

  DiffInstance bad(schema);
  bad.Append({Value("D1"), Value("P2"), Value(99.0)});  // wrong price
  std::string why;
  EXPECT_FALSE(IsEffective(bad, PostState(), &why));
  EXPECT_NE(why.find("not in post-state"), std::string::npos);
}

TEST(EffectivenessTest, DeleteKeysMustBeGone) {
  DiffSchema schema(DiffType::kDelete, "v", kView, {"pid"}, {}, {});
  DiffInstance good(schema);
  good.Append({Value("P9")});  // no P9 in post state
  EXPECT_TRUE(IsEffective(good, PostState()));

  DiffInstance bad(schema);
  bad.Append({Value("P1")});  // still present
  EXPECT_FALSE(IsEffective(bad, PostState()));
}

TEST(EffectivenessTest, UpdateMustMatchFinalValues) {
  DiffSchema schema(DiffType::kUpdate, "v", kView, {"pid"}, {}, {"price"});
  DiffInstance good(schema);
  good.Append({Value("P1"), Value(11.0)});
  good.Append({Value("P7"), Value(5.0)});  // absent key: vacuously fine
  EXPECT_TRUE(IsEffective(good, PostState()));

  DiffInstance bad(schema);
  bad.Append({Value("P1"), Value(10.0)});  // post state has 11
  EXPECT_FALSE(IsEffective(bad, PostState()));
}

TEST(EffectivenessTest, OrderIndependenceOfEffectiveSet) {
  // Two effective diffs applied in either order give the same result — the
  // property Section 2 derives from effectiveness.
  DiffSchema upd(DiffType::kUpdate, "v", kView, {"pid"}, {}, {"price"});
  DiffSchema ins(DiffType::kInsert, "v", kView, {"did", "pid"}, {},
                 {"price"});
  DiffInstance u(upd);
  u.Append({Value("P1"), Value(11.0)});
  DiffInstance i(ins);
  i.Append({Value("D3"), Value("P3"), Value(7.0)});

  auto apply_in_order = [&](bool update_first) {
    Database db;
    Table& view = db.CreateTable("v", kView, {"did", "pid"});
    view.BulkLoadUncounted(
        Relation(kView, {{Value("D1"), Value("P1"), Value(10.0)},
                         {Value("D2"), Value("P1"), Value(10.0)},
                         {Value("D1"), Value("P2"), Value(20.0)}}));
    if (update_first) {
      ApplyDiff(u, view);
      ApplyDiff(i, view);
    } else {
      ApplyDiff(i, view);
      ApplyDiff(u, view);
    }
    return view.SnapshotUncounted();
  };
  EXPECT_TRUE(apply_in_order(true).BagEquals(apply_in_order(false)));
}

}  // namespace
}  // namespace idivm
