// Tests for the Section 9 extension: insert i-diffs reading base-table
// attributes from the intermediate cache (CoalesceProbe), with the dynamic
// run-time fallback the paper describes.

#include "gtest/gtest.h"
#include "src/core/compose.h"
#include "src/core/maintainer.h"
#include "src/core/modification_log.h"
#include "src/workload/devices_parts.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

DevicesPartsConfig SmallConfig() {
  DevicesPartsConfig config;
  config.num_parts = 300;
  config.num_devices = 150;
  config.fanout = 5;
  return config;
}

CompilerOptions AssistOptions() {
  CompilerOptions options;
  options.view_assisted_inserts = true;
  return options;
}

TEST(ViewAssistTest, ScriptContainsCoalesceProbes) {
  Database db;
  DevicesPartsWorkload workload(&db, SmallConfig());
  Maintainer m(&db, CompileView("vp", workload.AggViewPlan(), db,
                                AssistOptions()));
  EXPECT_NE(m.view().script.ToString().find("COALESCE-PROBE[parts]"),
            std::string::npos);
}

TEST(ViewAssistTest, LinkInsertsAvoidBaseTable) {
  // Inserting devices_parts links to parts that ALREADY appear in the view:
  // their price is read from the cache, not from `parts` — zero base
  // accesses on parts (the Section 9 goal).
  Database db;
  DevicesPartsWorkload workload(&db, SmallConfig());
  Maintainer m(&db, CompileView("vp", workload.AggViewPlan(), db,
                                AssistOptions()));
  // pids already present in the cache (linked to some phone device).
  const std::string cache_name = m.view().cache_tables[0];
  std::set<int64_t> cached_pids;
  {
    const Relation cache = db.GetTable(cache_name).SnapshotUncounted();
    const size_t pid_col = cache.schema().ColumnIndex("pid");
    for (const Row& row : cache.rows()) {
      cached_pids.insert(row[pid_col].AsInt64());
    }
  }
  ASSERT_GE(cached_pids.size(), 10u);

  ModificationLogger logger(&db);
  int64_t added = 0;
  for (int64_t pid : cached_pids) {
    if (added >= 10) break;
    for (int64_t did = 0; did < 150; ++did) {
      if (db.GetTable("devices")
              .LookupByKeyUncounted({Value(did)})
              .value()[1]
              .AsString() != "phone") {
        continue;
      }
      if (db.GetTable("devices_parts")
              .LookupByKeyUncounted({Value(did), Value(pid)})
              .has_value()) {
        continue;
      }
      EXPECT_TRUE(logger.Insert("devices_parts", {Value(did), Value(pid)}));
      ++added;
      break;  // next pid
    }
  }
  ASSERT_GT(added, 0);
  db.stats().Reset();
  db.GetTable("parts").ResetLocalStats();
  m.Maintain(logger.NetChanges());
  // The headline of the extension: no parts accesses at all. (Checked
  // before the recompute comparison, whose full evaluation scans parts.)
  EXPECT_EQ(db.GetTable("parts").local_stats().TotalAccesses(), 0);
  testing::ExpectViewMatchesRecompute(&db, m.view().plan, "vp");

  // Control: without assistance the same round probes parts once per link.
  Database db2;
  DevicesPartsWorkload workload2(&db2, SmallConfig());
  Maintainer m2(&db2, CompileView("vp", workload2.AggViewPlan(), db2));
  ModificationLogger logger2(&db2);
  for (const auto& [table, mods] : logger.log()) {
    for (const Modification& mod : mods) {
      EXPECT_TRUE(logger2.Insert(table, mod.post));
    }
  }
  db2.stats().Reset();
  db2.GetTable("parts").ResetLocalStats();
  m2.Maintain(logger2.NetChanges());
  EXPECT_GT(db2.GetTable("parts").local_stats().TotalAccesses(), 0);
}

TEST(ViewAssistTest, MissFallsBackToBaseTable) {
  // A brand-new part has no cache rows: the probe must dynamically fall
  // back to `parts` (the run-time decision of Section 9).
  Database db;
  DevicesPartsWorkload workload(&db, SmallConfig());
  Maintainer m(&db, CompileView("vp", workload.AggViewPlan(), db,
                                AssistOptions()));
  ModificationLogger logger(&db);
  EXPECT_TRUE(logger.Insert("parts", {Value(int64_t{9999}), Value(55.0)}));
  EXPECT_TRUE(logger.Insert("devices_parts", {Value(int64_t{0}), Value(int64_t{9999})}));
  db.stats().Reset();
  db.GetTable("parts").ResetLocalStats();
  m.Maintain(logger.NetChanges());
  testing::ExpectViewMatchesRecompute(&db, m.view().plan, "vp");
}

TEST(ViewAssistTest, UpdatesDisableAssistForSafety) {
  // When parts itself is updated in the same round, the cache copy may be
  // mid-maintenance: the executor must take the fallback and stay correct.
  Database db;
  DevicesPartsWorkload workload(&db, SmallConfig());
  Maintainer m(&db, CompileView("vp", workload.AggViewPlan(), db,
                                AssistOptions()));
  ModificationLogger logger(&db);
  EXPECT_TRUE(logger.Update("parts", {Value(int64_t{5})}, {"price"}, {Value(77.0)}));
  // Link part 5 into a device in the same batch.
  for (int64_t did = 0; did < 150; ++did) {
    if (!db.GetTable("devices_parts")
             .LookupByKeyUncounted({Value(did), Value(int64_t{5})})
             .has_value()) {
      EXPECT_TRUE(logger.Insert("devices_parts", {Value(did), Value(int64_t{5})}));
      break;
    }
  }
  m.Maintain(logger.NetChanges());
  testing::ExpectViewMatchesRecompute(&db, m.view().plan, "vp");
}

TEST(ViewAssistTest, MixedRoundsStayCorrect) {
  Database db;
  DevicesPartsWorkload workload(&db, SmallConfig());
  Maintainer m(&db, CompileView("vp", workload.AggViewPlan(), db,
                                AssistOptions()));
  ModificationLogger logger(&db);
  for (int round = 0; round < 4; ++round) {
    workload.ApplyMixedChanges(&logger, 15, 10, 15);
    m.Maintain(logger.NetChanges());
    logger.Clear();
    testing::ExpectViewMatchesRecompute(&db, m.view().plan, "vp",
                                        "round " + std::to_string(round));
  }
}

}  // namespace
}  // namespace idivm
