// Unit tests for the deterministic RNG used by workloads and property tests.

#include <set>

#include "gtest/gtest.h"
#include "src/common/rng.h"

namespace idivm {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 12);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 12);
  }
  // Degenerate range.
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 2000; ++i) hits += rng.Bernoulli(0.25) ? 1 : 0;
  EXPECT_GT(hits, 350);
  EXPECT_LT(hits, 650);
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(17);
  const std::vector<size_t> sample = rng.SampleIndices(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t idx : sample) EXPECT_LT(idx, 50u);
  // Full sample is a permutation.
  const std::vector<size_t> all = rng.SampleIndices(5, 5);
  EXPECT_EQ(std::set<size_t>(all.begin(), all.end()).size(), 5u);
}

TEST(RngTest, PickFrom) {
  Rng rng(19);
  const std::vector<std::string> items = {"a", "b", "c"};
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.PickFrom(items));
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace idivm
