// Unit tests for the Θ-join rules (Table 10): the pass-through fast path
// for non-conditional updates, insert expansion, the delete+insert
// decomposition for condition-affecting updates, and ID retargeting.

#include "gtest/gtest.h"
#include "src/algebra/plan_printer.h"
#include "src/core/rules.h"

namespace idivm {
namespace {

class RulesJoinTest : public ::testing::Test {
 protected:
  RulesJoinTest() {
    db_.CreateTable("l", Schema({{"lid", DataType::kInt64},
                                 {"k", DataType::kInt64},
                                 {"v", DataType::kDouble}}),
                    {"lid"});
    db_.CreateTable("rr", Schema({{"rid", DataType::kInt64},
                                  {"w", DataType::kDouble}}),
                    {"rid"});
  }

  RuleContext MakeContext(const ExprPtr& predicate) {
    plan_ = PlanNode::Join(PlanNode::Scan("l"), PlanNode::Scan("rr"),
                           predicate);
    RuleContext ctx;
    ctx.op = plan_.get();
    ctx.db = &db_;
    ctx.node_name = "join";
    ctx.output_schema = InferSchema(plan_, db_);
    ctx.output_ids = {"lid", "rid"};
    ctx.input_post = {PlanNode::Scan("l"), PlanNode::Scan("rr")};
    ctx.input_pre = {PlanNode::Scan("l", StateTag::kPre),
                     PlanNode::Scan("rr", StateTag::kPre)};
    ctx.input_schemas = {db_.GetTable("l").schema(),
                         db_.GetTable("rr").schema()};
    ctx.input_ids = {{"lid"}, {"rid"}};
    return ctx;
  }

  Database db_;
  PlanPtr plan_;
};

TEST_F(RulesJoinTest, NonConditionalUpdatePassesThrough) {
  // The headline idIVM behaviour: no join for value-only updates.
  RuleContext ctx = MakeContext(Eq(Col("k"), Col("rid")));
  const DiffSchema diff(DiffType::kUpdate, "l", db_.GetTable("l").schema(),
                        {"lid"}, {"k", "v"}, {"v"});
  const auto out = PropagateThroughJoin(ctx, "d", diff, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kUpdate);
  EXPECT_EQ(out[0].schema.id_columns(), (std::vector<std::string>{"lid"}));
  EXPECT_TRUE(IsTransientOnly(out[0].query));
}

TEST_F(RulesJoinTest, InsertJoinsWithOtherSide) {
  RuleContext ctx = MakeContext(Eq(Col("k"), Col("rid")));
  const DiffSchema diff(DiffType::kInsert, "l", db_.GetTable("l").schema(),
                        {"lid"}, {}, {"k", "v"});
  const auto out = PropagateThroughJoin(ctx, "d", diff, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kInsert);
  // Full output ID, all attributes post.
  EXPECT_EQ(out[0].schema.id_columns(),
            (std::vector<std::string>{"lid", "rid"}));
  EXPECT_FALSE(IsTransientOnly(out[0].query));  // reads Input_post_r
  EXPECT_NE(PlanToString(out[0].query).find("SCAN rr"), std::string::npos);
}

TEST_F(RulesJoinTest, ConditionalUpdateBecomesDeleteInsert) {
  RuleContext ctx = MakeContext(Eq(Col("k"), Col("rid")));
  const DiffSchema diff(DiffType::kUpdate, "l", db_.GetTable("l").schema(),
                        {"lid"}, {"k", "v"}, {"k"});
  const auto out = PropagateThroughJoin(ctx, "d", diff, 0);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kDelete);
  EXPECT_EQ(out[1].schema.type(), DiffType::kInsert);
  // The re-insert reads the other side; the diff covers the left row so the
  // left side itself is reconstructed from the diff.
  EXPECT_NE(PlanToString(out[1].query).find("SCAN rr"), std::string::npos);
  EXPECT_EQ(PlanToString(out[1].query).find("SCAN l"), std::string::npos);
}

TEST_F(RulesJoinTest, RightSideDiffIdRetargetedThroughEquiPair) {
  // The right key rid is equated to l.k; the output keeps lid and rid. A
  // right-side update diff keyed {rid} stays keyed {rid} (present in the
  // output ID).
  RuleContext ctx = MakeContext(Eq(Col("k"), Col("rid")));
  const DiffSchema diff(DiffType::kUpdate, "rr",
                        db_.GetTable("rr").schema(), {"rid"}, {"w"}, {"w"});
  const auto out = PropagateThroughJoin(ctx, "d", diff, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.id_columns(), (std::vector<std::string>{"rid"}));
}

TEST_F(RulesJoinTest, RightKeyRenamedWhenDroppedFromOutput) {
  // Natural-join shape: output ID deduplicated the right key away.
  RuleContext ctx = MakeContext(Eq(Col("k"), Col("rid")));
  ctx.output_ids = {"lid", "k"};  // rid resolved to k by ID inference
  const DiffSchema diff(DiffType::kUpdate, "rr",
                        db_.GetTable("rr").schema(), {"rid"}, {"w"}, {"w"});
  const auto out = PropagateThroughJoin(ctx, "d", diff, 1);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.id_columns(), (std::vector<std::string>{"k"}));
}

TEST_F(RulesJoinTest, DeletePassesThroughWithPre) {
  RuleContext ctx = MakeContext(Eq(Col("k"), Col("rid")));
  const DiffSchema diff(DiffType::kDelete, "l", db_.GetTable("l").schema(),
                        {"lid"}, {"k", "v"}, {});
  const auto out = PropagateThroughJoin(ctx, "d", diff, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kDelete);
  EXPECT_TRUE(IsTransientOnly(out[0].query));
}

TEST_F(RulesJoinTest, CrossProductInsert) {
  // Table 4: × is a join with a TRUE condition.
  RuleContext ctx = MakeContext(Lit(Value(int64_t{1})));
  const DiffSchema diff(DiffType::kInsert, "l", db_.GetTable("l").schema(),
                        {"lid"}, {}, {"k", "v"});
  const auto out = PropagateThroughJoin(ctx, "d", diff, 0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].schema.type(), DiffType::kInsert);
}

}  // namespace
}  // namespace idivm
