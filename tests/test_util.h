// Shared helpers for idIVM tests: the Fig. 1/2 toy database, view
// recomputation, and IVM-vs-recompute assertions.

#ifndef IDIVM_TESTS_TEST_UTIL_H_
#define IDIVM_TESTS_TEST_UTIL_H_

#include <string>

#include "gtest/gtest.h"
#include "src/algebra/evaluator.h"
#include "src/algebra/plan.h"
#include "src/storage/database.h"

namespace idivm::testing {

// Loads the paper's running-example instance (Fig. 2):
//   parts:          (P1, 10), (P2, 20), (P3, 20)
//   devices:        (D1, phone), (D2, phone), (D3, tablet)
//   devices_parts:  (D1,P1), (D2,P1), (D1,P2), (D3,P2)
// (P3 exists but is unused — the overestimation example of Sec. 1; D3/P2
// exercises the failing selection.)
inline void LoadRunningExample(Database* db) {
  Table& parts = db->CreateTable(
      "parts",
      Schema({{"pid", DataType::kString}, {"price", DataType::kDouble}}),
      {"pid"});
  parts.BulkLoadUncounted(Relation(
      parts.schema(),
      {{Value("P1"), Value(10.0)}, {Value("P2"), Value(20.0)},
       {Value("P3"), Value(20.0)}}));

  Table& devices = db->CreateTable(
      "devices",
      Schema({{"did", DataType::kString}, {"category", DataType::kString}}),
      {"did"});
  devices.BulkLoadUncounted(Relation(
      devices.schema(),
      {{Value("D1"), Value("phone")}, {Value("D2"), Value("phone")},
       {Value("D3"), Value("tablet")}}));

  Table& dp = db->CreateTable(
      "devices_parts",
      Schema({{"did", DataType::kString}, {"pid", DataType::kString}}),
      {"did", "pid"});
  dp.BulkLoadUncounted(Relation(
      dp.schema(),
      {{Value("D1"), Value("P1")}, {Value("D2"), Value("P1")},
       {Value("D1"), Value("P2")}, {Value("D3"), Value("P2")}}));
}

// The Fig. 1b SPJ view over the running example.
inline PlanPtr RunningExampleSpjPlan(const Database& db) {
  PlanPtr plan = NaturalJoin(PlanNode::Scan("parts"),
                             PlanNode::Scan("devices_parts"), db);
  plan = NaturalJoin(
      std::move(plan),
      PlanNode::Select(PlanNode::Scan("devices"),
                       Eq(Col("category"), Lit(Value("phone")))),
      db);
  return ProjectColumns(std::move(plan), {"did", "pid", "price"});
}

// The Fig. 5b aggregate view.
inline PlanPtr RunningExampleAggPlan(const Database& db) {
  return PlanNode::Aggregate(RunningExampleSpjPlan(db), {"did"},
                             {{AggFunc::kSum, Col("price"), "cost"}});
}

// Recomputes `plan` from the current base tables without charging accesses.
inline Relation Recompute(Database* db, const PlanPtr& plan) {
  const AccessStats saved = db->stats();
  EvalContext ctx;
  ctx.db = db;
  Relation out = Evaluate(plan, ctx);
  db->stats() = AccessStats();
  db->stats() += saved;
  return out;
}

// Asserts the materialized `view_table` equals recomputing `plan`.
inline void ExpectViewMatchesRecompute(Database* db, const PlanPtr& plan,
                                       const std::string& view_table,
                                       const std::string& context = "") {
  const Relation expected = Recompute(db, plan);
  const Relation actual = db->GetTable(view_table).SnapshotUncounted();
  EXPECT_TRUE(actual.BagEquals(expected))
      << context << "\nexpected (recomputed):\n"
      << expected.Sorted().ToString() << "\nactual (maintained):\n"
      << actual.Sorted().ToString();
}

}  // namespace idivm::testing

#endif  // IDIVM_TESTS_TEST_UTIL_H_
