// Unit tests for the Section 5 i-diff schema generator: conditional
// attribute groups, the NC schema, the spanning-update fallback, and
// provenance tracking.

#include "gtest/gtest.h"
#include "src/core/schema_generator.h"
#include "tests/test_util.h"

namespace idivm {
namespace {

class SchemaGeneratorTest : public ::testing::Test {
 protected:
  SchemaGeneratorTest() { testing::LoadRunningExample(&db_); }

  GeneratedDiffSchemas Generate(const PlanPtr& plan) {
    return GenerateBaseDiffSchemas(InferIds(plan, db_), db_);
  }

  static int CountType(const std::vector<DiffSchema>& schemas,
                       DiffType type) {
    int n = 0;
    for (const DiffSchema& s : schemas) n += s.type() == type ? 1 : 0;
    return n;
  }

  Database db_;
};

TEST_F(SchemaGeneratorTest, RunningExampleSchemas) {
  const GeneratedDiffSchemas out =
      Generate(testing::RunningExampleSpjPlan(db_));

  // parts: insert, delete, and ONE update schema (price is the only
  // non-key attribute, non-conditional) — the Fig. 11c diff.
  const std::vector<DiffSchema>& parts = out.For("parts");
  EXPECT_EQ(CountType(parts, DiffType::kInsert), 1);
  EXPECT_EQ(CountType(parts, DiffType::kDelete), 1);
  EXPECT_EQ(CountType(parts, DiffType::kUpdate), 1);
  for (const DiffSchema& s : parts) {
    if (s.type() == DiffType::kUpdate) {
      EXPECT_EQ(s.post_columns(), (std::vector<std::string>{"price"}));
      EXPECT_EQ(s.pre_columns(), (std::vector<std::string>{"price"}));
    }
    if (s.type() == DiffType::kDelete) {
      // Full pre-state ("pre-state values can lead only to a more
      // efficient ∆-script").
      EXPECT_EQ(s.pre_columns(), (std::vector<std::string>{"price"}));
    }
  }

  // devices: category is conditional (σ category='phone') → one C_op
  // update schema; no NC attributes remain.
  const std::vector<DiffSchema>& devices = out.For("devices");
  EXPECT_EQ(CountType(devices, DiffType::kUpdate), 1);

  // devices_parts: all attributes are key attributes → no update schemas.
  EXPECT_EQ(CountType(out.For("devices_parts"), DiffType::kUpdate), 0);
}

TEST_F(SchemaGeneratorTest, SpanningFallbackSchema) {
  // A table whose attributes split into a conditional group and an NC group
  // also gets the all-attributes fallback for spanning updates.
  Table& t = db_.CreateTable("wide",
                             Schema({{"id", DataType::kInt64},
                                     {"cond", DataType::kInt64},
                                     {"payload", DataType::kDouble}}),
                             {"id"});
  (void)t;
  const PlanPtr plan = PlanNode::Select(
      PlanNode::Scan("wide"), Gt(Col("cond"), Lit(Value(int64_t{0}))));
  const GeneratedDiffSchemas out = Generate(plan);
  const std::vector<DiffSchema>& schemas = out.For("wide");
  std::set<std::vector<std::string>> post_sets;
  for (const DiffSchema& s : schemas) {
    if (s.type() == DiffType::kUpdate) post_sets.insert(s.post_columns());
  }
  EXPECT_EQ(post_sets.size(), 3u);  // {cond}, {payload}, {cond, payload}
  EXPECT_TRUE(post_sets.count({"cond"}) > 0);
  EXPECT_TRUE(post_sets.count({"payload"}) > 0);
  EXPECT_TRUE(post_sets.count({"cond", "payload"}) > 0);
}

TEST_F(SchemaGeneratorTest, GroupByColumnsAreConditional) {
  const GeneratedDiffSchemas out =
      Generate(testing::RunningExampleAggPlan(db_));
  // The γ groups by did (a key of devices — keys are never conditional),
  // so devices still has exactly one update schema (category).
  EXPECT_EQ(CountType(out.For("devices"), DiffType::kUpdate), 1);
}

TEST_F(SchemaGeneratorTest, ProvenanceThroughOperators) {
  const ColumnOrigins origins =
      ComputeProvenance(testing::RunningExampleSpjPlan(db_), db_);
  EXPECT_EQ(origins.at("price"),
            (std::set<std::pair<std::string, std::string>>{
                {"parts", "price"}}));
  // did reaches the output from both devices_parts and devices (equi).
  EXPECT_TRUE(origins.at("did").count({"devices_parts", "did"}) > 0);
}

TEST_F(SchemaGeneratorTest, ConditionalAttributesHelper) {
  const auto cond =
      ConditionalAttributes(testing::RunningExampleSpjPlan(db_), db_);
  const auto it = cond.find("devices");
  ASSERT_NE(it, cond.end());
  EXPECT_EQ(it->second, (std::set<std::string>{"category"}));
  // parts.price appears in no condition.
  EXPECT_TRUE(cond.find("parts") == cond.end() ||
              cond.at("parts").count("price") == 0);
}

}  // namespace
}  // namespace idivm
