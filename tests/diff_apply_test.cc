// Unit tests for APPLY ∆ᵗ (Section 2 DML semantics): ID-subset updates,
// NOT-IN guarded inserts, overestimated deletes, additive updates,
// RETURNING captures, and the paper's access-cost model.

#include "gtest/gtest.h"
#include "src/diff/apply.h"
#include "src/storage/database.h"

namespace idivm {
namespace {

class ApplyTest : public ::testing::Test {
 protected:
  ApplyTest()
      : view_(db_.CreateTable("v",
                              Schema({{"did", DataType::kString},
                                      {"pid", DataType::kString},
                                      {"price", DataType::kDouble}}),
                              {"did", "pid"})) {
    // The Fig. 2 initial view instance.
    view_.BulkLoadUncounted(Relation(
        view_.schema(),
        {{Value("D1"), Value("P1"), Value(10.0)},
         {Value("D2"), Value("P1"), Value(10.0)},
         {Value("D1"), Value("P2"), Value(20.0)}}));
  }

  Database db_;
  Table& view_;
};

TEST_F(ApplyTest, UpdateByKeySubsetTouchesAllMatches) {
  // Example 2.2: ∆u_V(pid | price) updates both P1 tuples.
  DiffSchema schema(DiffType::kUpdate, "v", view_.schema(), {"pid"},
                    {"price"}, {"price"});
  DiffInstance diff(schema);
  diff.Append({Value("P1"), Value(10.0), Value(11.0)});
  db_.stats().Reset();
  const ApplyResult result = ApplyDiff(diff, view_);
  EXPECT_EQ(result.rows_touched, 2);
  EXPECT_EQ(result.dummy_tuples, 0);
  // |∆| lookups + p tuple accesses.
  EXPECT_EQ(db_.stats().index_lookups, 1);
  EXPECT_EQ(db_.stats().tuple_writes, 2);
  EXPECT_DOUBLE_EQ((*view_.LookupByKey({Value("D2"), Value("P1")}))[2]
                       .AsDouble(),
                   11.0);
}

TEST_F(ApplyTest, DummyUpdateIsCountedNotFatal) {
  // Overestimation (Section 1's P3): updating a non-existent key is a no-op.
  DiffSchema schema(DiffType::kUpdate, "v", view_.schema(), {"pid"}, {},
                    {"price"});
  DiffInstance diff(schema);
  diff.Append({Value("P9"), Value(1.0)});
  const ApplyResult result = ApplyDiff(diff, view_);
  EXPECT_EQ(result.rows_touched, 0);
  EXPECT_EQ(result.dummy_tuples, 1);
}

TEST_F(ApplyTest, InsertWithNotInGuard) {
  DiffSchema schema(DiffType::kInsert, "v", view_.schema(), {"did", "pid"},
                    {}, {"price"});
  DiffInstance diff(schema);
  diff.Append({Value("D3"), Value("P2"), Value(20.0)});
  // Re-inserting an identical existing tuple is skipped (Example 2.3's
  // remark: multiple insert i-diffs may try to insert the same tuple).
  diff.Append({Value("D1"), Value("P1"), Value(10.0)});
  const ApplyResult result = ApplyDiff(diff, view_);
  EXPECT_EQ(result.rows_touched, 1);
  EXPECT_EQ(result.dummy_tuples, 1);
  EXPECT_EQ(view_.size(), 4u);
}

TEST_F(ApplyTest, NonEffectiveInsertAborts) {
  DiffSchema schema(DiffType::kInsert, "v", view_.schema(), {"did", "pid"},
                    {}, {"price"});
  DiffInstance diff(schema);
  diff.Append({Value("D1"), Value("P1"), Value(99.0)});  // key exists, diff
  EXPECT_DEATH(ApplyDiff(diff, view_), "non-effective");
}

TEST_F(ApplyTest, DeleteByKeySubset) {
  // Example 2.4: deleting by pid removes both P1 tuples.
  DiffSchema schema(DiffType::kDelete, "v", view_.schema(), {"pid"},
                    {"price"}, {});
  DiffInstance diff(schema);
  diff.Append({Value("P1"), Value(10.0)});
  diff.Append({Value("P7"), Value(0.0)});  // overestimated
  const ApplyResult result = ApplyDiff(diff, view_);
  EXPECT_EQ(result.rows_touched, 2);
  EXPECT_EQ(result.dummy_tuples, 1);
  EXPECT_EQ(view_.size(), 1u);
}

TEST_F(ApplyTest, AdditiveUpdateAddsDeltas) {
  DiffSchema schema(DiffType::kUpdate, "v", view_.schema(), {"pid"}, {},
                    {"price"}, /*additive=*/true);
  DiffInstance diff(schema);
  diff.Append({Value("P1"), Value(2.5)});
  ApplyDiff(diff, view_);
  EXPECT_DOUBLE_EQ((*view_.LookupByKey({Value("D1"), Value("P1")}))[2]
                       .AsDouble(),
                   12.5);
  EXPECT_DOUBLE_EQ((*view_.LookupByKey({Value("D2"), Value("P1")}))[2]
                       .AsDouble(),
                   12.5);
}

TEST_F(ApplyTest, AdditiveUpdateTreatsNullAsZero) {
  view_.UpdateByKey({Value("D1"), Value("P2")}, {2}, {Value::Null()});
  DiffSchema schema(DiffType::kUpdate, "v", view_.schema(), {"pid"}, {},
                    {"price"}, /*additive=*/true);
  DiffInstance diff(schema);
  diff.Append({Value("P2"), Value(5.0)});
  ApplyDiff(diff, view_);
  EXPECT_DOUBLE_EQ((*view_.LookupByKey({Value("D1"), Value("P2")}))[2]
                       .AsDouble(),
                   5.0);
}

TEST_F(ApplyTest, ReturningCapturesImages) {
  DiffSchema schema(DiffType::kUpdate, "v", view_.schema(), {"pid"}, {},
                    {"price"});
  DiffInstance diff(schema);
  diff.Append({Value("P1"), Value(11.0)});
  ReturningImages images(view_.schema());
  ApplyDiff(diff, view_, &images);
  ASSERT_EQ(images.pre_images.size(), 2u);
  ASSERT_EQ(images.post_images.size(), 2u);
  EXPECT_DOUBLE_EQ(images.pre_images.rows()[0][2].AsDouble(), 10.0);
  EXPECT_DOUBLE_EQ(images.post_images.rows()[0][2].AsDouble(), 11.0);

  // Deletes capture pre images only; inserts post images only.
  DiffSchema del(DiffType::kDelete, "v", view_.schema(), {"pid"}, {}, {});
  DiffInstance del_diff(del);
  del_diff.Append({Value("P2")});
  ReturningImages del_images(view_.schema());
  ApplyDiff(del_diff, view_, &del_images);
  EXPECT_EQ(del_images.pre_images.size(), 1u);
  EXPECT_EQ(del_images.post_images.size(), 0u);
}

}  // namespace
}  // namespace idivm
